"""Protocols for the bcm model.

A protocol is a deterministic function of a process's local state: whenever a
process is scheduled (i.e. one or more messages -- internal or external -- are
delivered to it), the protocol decides which local actions to perform and to
which neighbours to send messages.  Processes never observe the time; the
protocol interface therefore exposes only local information.

Every message sent by the simulation engine carries the sender's full local
history (full-information payload).  The paper's *flooding full-information
protocol* (FFIP) is the protocol that, on every receipt, floods to all
out-neighbours and performs no actions; it is provided as
:class:`FloodingFullInformationProtocol`.  Application behaviour (performing
the actions ``a`` and ``b`` of the coordination problems, sending the "go"
message, and so on) is layered on top via :class:`RuleBasedProtocol` and
:class:`ActionRule` objects, keeping communication FFIP-shaped as the theory
requires.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Tuple

from .messages import GO_TRIGGER, History, MessageReceipt, Observation
from .network import Process, TimedNetwork


@dataclass(frozen=True)
class StepContext:
    """Everything a protocol may consult when a process is scheduled.

    Attributes
    ----------
    process:
        The process being scheduled.
    previous_history:
        The process's local state just before this step.
    observations:
        The new observations delivered in this step (external receipts first,
        then message receipts in a deterministic order).  Local actions are
        *not* part of this tuple; they are what the protocol returns.
    timed_network:
        The static context ``(Net, L, U)``, which is common knowledge.
    """

    process: Process
    previous_history: History
    observations: Tuple[Observation, ...]
    timed_network: TimedNetwork

    @property
    def tentative_history(self) -> History:
        """The local state including the new receipts but no new actions."""
        return self.previous_history.extend(self.observations)

    def received_from(self, sender: Process) -> Tuple[MessageReceipt, ...]:
        """The message receipts of this step coming from ``sender``."""
        return tuple(
            obs
            for obs in self.observations
            if isinstance(obs, MessageReceipt) and obs.sender == sender
        )


@dataclass(frozen=True)
class StepDecision:
    """What a protocol decides to do in one step.

    Attributes
    ----------
    actions:
        Names of local actions to perform, in order.
    send_to:
        Processes to send a (full-information) message to.  ``None`` means
        "flood to every out-neighbour" (the FFIP behaviour); an empty tuple
        means "send nothing".
    payload:
        Optional application payload attached to every message sent in this
        step.
    """

    actions: Tuple[str, ...] = ()
    send_to: Optional[Tuple[Process, ...]] = None
    payload: Optional[str] = None

    @classmethod
    def flood(cls, actions: Sequence[str] = (), payload: Optional[str] = None) -> "StepDecision":
        return cls(actions=tuple(actions), send_to=None, payload=payload)

    @classmethod
    def silent(cls, actions: Sequence[str] = ()) -> "StepDecision":
        return cls(actions=tuple(actions), send_to=())


class Protocol(ABC):
    """A deterministic per-process protocol."""

    @abstractmethod
    def on_step(self, ctx: StepContext) -> StepDecision:
        """Decide the actions and sends for one scheduling step."""


class FloodingFullInformationProtocol(Protocol):
    """The paper's FFIP: on every receipt, flood the full history to all neighbours."""

    def on_step(self, ctx: StepContext) -> StepDecision:
        return StepDecision.flood()


class SilentProtocol(Protocol):
    """A protocol that never sends and never acts (useful as a degenerate baseline)."""

    def on_step(self, ctx: StepContext) -> StepDecision:
        return StepDecision.silent()


class ActionRule(ABC):
    """A rule deciding which local actions a process performs in a step.

    Rules see the tentative history (previous state plus the new receipts) and
    return action names.  Rules must be deterministic functions of that local
    information only.
    """

    @abstractmethod
    def actions(self, ctx: StepContext) -> Tuple[str, ...]:
        """Action names to perform in this step (possibly empty)."""


class FunctionRule(ActionRule):
    """Wrap a plain callable ``(StepContext) -> Sequence[str]`` as an ActionRule."""

    def __init__(self, fn: Callable[[StepContext], Sequence[str]], name: str = "rule"):
        self._fn = fn
        self._name = name

    def actions(self, ctx: StepContext) -> Tuple[str, ...]:
        return tuple(self._fn(ctx))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionRule({self._name})"


class PerformOnceRule(ActionRule):
    """Perform ``action`` (at most once per run) when ``condition`` first holds.

    ``condition`` receives the step context; the "at most once" guard checks
    whether the action already appears in the process's history.
    """

    def __init__(self, action: str, condition: Callable[[StepContext], bool]):
        self.action = action
        self._condition = condition

    def actions(self, ctx: StepContext) -> Tuple[str, ...]:
        if ctx.tentative_history.has_action(self.action):
            return ()
        if self._condition(ctx):
            return (self.action,)
        return ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PerformOnceRule({self.action})"


class RuleBasedProtocol(Protocol):
    """An FFIP-communicating protocol whose actions are given by rules.

    Communication is always full-information flooding (``flood=True``) or
    silent (``flood=False``); the rules only control local actions.  This is
    the general shape used by the paper: the interesting part of a protocol in
    the bcm model is *when* it performs its actions, and FFIP communication is
    without loss of generality.
    """

    def __init__(self, rules: Sequence[ActionRule] = (), flood: bool = True):
        self.rules = tuple(rules)
        self.flood = flood

    def on_step(self, ctx: StepContext) -> StepDecision:
        actions: list[str] = []
        for rule in self.rules:
            actions.extend(rule.actions(ctx))
        if self.flood:
            return StepDecision.flood(actions)
        return StepDecision.silent(actions)


# ---------------------------------------------------------------------------
# Rules for the roles of Definition 1 (processes A, B and C).
# ---------------------------------------------------------------------------


def received_go_trigger(ctx: StepContext, trigger: str = GO_TRIGGER) -> bool:
    """Whether this step delivers the spontaneous external trigger to the process."""
    from .messages import ExternalReceipt

    return any(
        isinstance(obs, ExternalReceipt) and obs.tag == trigger for obs in ctx.observations
    )


def go_seen_in_message_from(
    ctx: StepContext, sender: Process, trigger: str = GO_TRIGGER
) -> bool:
    """Whether this step delivers a message from ``sender`` whose history saw the trigger.

    Under an FFIP, "C sends A a *go* message when it receives ``mu_go``"
    manifests as A receiving a message from C whose embedded history contains
    the external receipt of ``mu_go``.
    """
    return any(
        receipt.message.sender_history.has_external(trigger)
        for receipt in ctx.received_from(sender)
    )


def history_embeds_trigger(history: History, origin: Process, trigger: str = GO_TRIGGER) -> bool:
    """Whether ``history`` (recursively) embeds ``origin`` receiving ``trigger``.

    Under a full-information protocol every forwarded message embeds its
    sender's history, so "did the go reach me through any relay chain" is a
    recursive scan of the embedded histories.
    """
    if history.process == origin and history.has_external(trigger):
        return True
    for receipt in history.receipts():
        if history_embeds_trigger(receipt.message.sender_history, origin, trigger):
            return True
    return False


def relayed_actor_protocol(
    action: str, origin: Process, trigger: str = GO_TRIGGER
) -> RuleBasedProtocol:
    """Perform ``action`` once any received history shows ``origin`` saw ``trigger``.

    The multi-hop counterpart of :func:`actor_protocol`: the go may reach the
    actor through arbitrary relay chains rather than a direct channel.
    """

    def condition(ctx: StepContext, origin=origin, trigger=trigger) -> bool:
        return any(
            history_embeds_trigger(receipt.message.sender_history, origin, trigger)
            for receipt in ctx.tentative_history.receipts()
        )

    return RuleBasedProtocol([PerformOnceRule(action, condition)])


def go_sender_protocol(trigger: str = GO_TRIGGER) -> RuleBasedProtocol:
    """Protocol for process C: flood; mark the 'send_go' action when the trigger arrives."""
    rule = PerformOnceRule("send_go", lambda ctx: received_go_trigger(ctx, trigger))
    return RuleBasedProtocol([rule])


def actor_protocol(
    action: str, go_sender: Process, trigger: str = GO_TRIGGER
) -> RuleBasedProtocol:
    """Protocol for process A: perform ``action`` upon receiving C's go message."""
    rule = PerformOnceRule(
        action, lambda ctx: go_seen_in_message_from(ctx, go_sender, trigger)
    )
    return RuleBasedProtocol([rule])


@dataclass
class ProtocolAssignment:
    """A joint protocol ``P = (P_1, ..., P_n)``: one protocol per process.

    Unassigned processes fall back to ``default`` (an FFIP relay by default).
    """

    protocols: dict = field(default_factory=dict)
    default: Protocol = field(default_factory=FloodingFullInformationProtocol)

    def for_process(self, process: Process) -> Protocol:
        return self.protocols.get(process, self.default)

    def assign(self, process: Process, protocol: Protocol) -> "ProtocolAssignment":
        self.protocols[process] = protocol
        return self
