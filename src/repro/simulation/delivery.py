"""Delivery strategies: the adversarial environment's scheduling choices.

The bcm environment may deliver a message on channel ``(i, j)`` at any time
``t`` with ``L_ij <= t - t_send <= U_ij`` and *must* deliver it once
``t - t_send = U_ij``.  A :class:`DeliveryStrategy` resolves this
nondeterminism by picking, at send time, the delivery delay for each message.
Because the choice is made per message and independently of later events, any
assignment of per-message delays within the windows -- i.e. any legal schedule
-- can be realised by some strategy, and conversely every strategy produces a
legal schedule.

Strategies provided:

* :class:`EarliestDelivery` -- always the lower bound (the "fast" adversary);
* :class:`LatestDelivery` -- always the upper bound (the "slow" adversary);
* :class:`SeededRandomDelivery` -- a reproducible uniformly random delay;
* :class:`ScriptedDelivery` -- explicit per-message delays, used by the
  figure scenarios and by run-reconstruction code;
* :class:`BiasedDelivery` -- per-channel overrides on top of a default.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Callable, Dict, Mapping, Optional, Tuple

from .messages import Message
from .network import Channel, Process, TimedNetwork


class DeliveryError(ValueError):
    """Raised when a strategy proposes a delay outside the legal window."""


class DeliveryStrategy(ABC):
    """Chooses the transmission delay of each message at the moment it is sent."""

    @abstractmethod
    def delay(
        self,
        message: Message,
        destination: Process,
        send_time: int,
        timed_network: TimedNetwork,
    ) -> int:
        """Return the chosen delay (delivery_time - send_time) for this message."""

    def checked_delay(
        self,
        message: Message,
        destination: Process,
        send_time: int,
        timed_network: TimedNetwork,
    ) -> int:
        """Like :meth:`delay` but validated against the channel window."""
        lower = timed_network.L(message.sender, destination)
        upper = timed_network.U(message.sender, destination)
        value = int(self.delay(message, destination, send_time, timed_network))
        if not lower <= value <= upper:
            raise DeliveryError(
                f"strategy chose delay {value} for channel "
                f"({message.sender}, {destination}) outside window [{lower}, {upper}]"
            )
        return value


class EarliestDelivery(DeliveryStrategy):
    """Deliver every message after exactly its lower bound."""

    def delay(self, message, destination, send_time, timed_network):  # noqa: D102
        return timed_network.L(message.sender, destination)


class LatestDelivery(DeliveryStrategy):
    """Deliver every message after exactly its upper bound."""

    def delay(self, message, destination, send_time, timed_network):  # noqa: D102
        return timed_network.U(message.sender, destination)


class SeededRandomDelivery(DeliveryStrategy):
    """Deliver after a uniformly random legal delay, reproducibly from a seed."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)

    def delay(self, message, destination, send_time, timed_network):  # noqa: D102
        lower = timed_network.L(message.sender, destination)
        upper = timed_network.U(message.sender, destination)
        return self._rng.randint(lower, upper)

    def reset(self) -> None:
        """Restore the strategy to its initial random state."""
        self._rng = random.Random(self.seed)


class BiasedDelivery(DeliveryStrategy):
    """Fixed per-channel delays on top of a fallback strategy.

    ``channel_delays`` maps ``(sender, receiver)`` to the delay to use for
    every message on that channel; other channels defer to ``fallback``.
    """

    def __init__(
        self,
        channel_delays: Mapping[Channel, int],
        fallback: Optional[DeliveryStrategy] = None,
    ):
        self.channel_delays = dict(channel_delays)
        self.fallback = fallback if fallback is not None else EarliestDelivery()

    def delay(self, message, destination, send_time, timed_network):  # noqa: D102
        key = (message.sender, destination)
        if key in self.channel_delays:
            return self.channel_delays[key]
        return self.fallback.delay(message, destination, send_time, timed_network)


class ScriptedDelivery(DeliveryStrategy):
    """Explicit delays for specific messages, identified by a user predicate.

    ``script`` is a list of ``(matcher, delay)`` pairs where ``matcher`` is a
    callable ``(message, destination, send_time) -> bool``; the first matching
    entry wins.  Unmatched messages defer to ``fallback``.

    The figure scenarios use this to pin down the exact communication pattern
    drawn in the paper.
    """

    Matcher = Callable[[Message, Process, int], bool]

    def __init__(
        self,
        script: Tuple[Tuple["ScriptedDelivery.Matcher", int], ...] = (),
        fallback: Optional[DeliveryStrategy] = None,
    ):
        self.script = list(script)
        self.fallback = fallback if fallback is not None else EarliestDelivery()

    def add(self, matcher: "ScriptedDelivery.Matcher", delay: int) -> "ScriptedDelivery":
        self.script.append((matcher, delay))
        return self

    def delay(self, message, destination, send_time, timed_network):  # noqa: D102
        for matcher, chosen in self.script:
            if matcher(message, destination, send_time):
                return chosen
        return self.fallback.delay(message, destination, send_time, timed_network)


class DelayTableDelivery(DeliveryStrategy):
    """Delays keyed by ``(sender, destination, send_time)``; fallback otherwise.

    This is the most convenient scripted form for run re-construction: a table
    of exact delays for the messages whose timing matters, with everything
    else delegated to a default adversary.
    """

    def __init__(
        self,
        table: Mapping[Tuple[Process, Process, int], int],
        fallback: Optional[DeliveryStrategy] = None,
    ):
        self.table: Dict[Tuple[Process, Process, int], int] = dict(table)
        self.fallback = fallback if fallback is not None else EarliestDelivery()

    def delay(self, message, destination, send_time, timed_network):  # noqa: D102
        key = (message.sender, destination, send_time)
        if key in self.table:
            return self.table[key]
        return self.fallback.delay(message, destination, send_time, timed_network)
