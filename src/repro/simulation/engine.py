"""The discrete-event simulation engine for the bcm model.

The engine advances global time in unit steps.  At every step it

1. collects the internal messages whose (strategy-chosen) delivery time is the
   current step, and the external inputs scheduled for the current step;
2. delivers them: each receiving process observes all of them in one atomic
   step (external receipts first, then internal receipts in a deterministic
   order), the process's protocol chooses local actions, and the new basic
   node is recorded on the process's timeline;
3. sends the messages the protocol asked for, stamping them with the sender's
   new history (full-information payload) and choosing their delivery times
   via the :class:`~repro.simulation.delivery.DeliveryStrategy`.

Processes are event-driven: they take a step only when at least one message is
delivered to them, and they never act spontaneously at time 0, exactly as in
the paper's model.

Run construction rides on the hash-consed substrate of
:mod:`repro.simulation.interning`: ``History.extend`` appends to a persistent
parent-pointer chain (O(step), no prefix copy), and the messages/nodes built
here are interned so every later equality, serialisation table lookup, or
causal-past walk over the run works by identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.nodes import BasicNode
from .context import Context, ExternalInput, schedule
from .delivery import DeliveryStrategy, EarliestDelivery
from .messages import (
    ExternalReceipt,
    History,
    LocalAction,
    Message,
    MessageReceipt,
    Observation,
)
from .network import Process, TimedNetwork
from .protocols import (
    FloodingFullInformationProtocol,
    Protocol,
    ProtocolAssignment,
    StepContext,
    StepDecision,
)
from .runs import (
    DeliveryRecord,
    ExternalDeliveryRecord,
    Run,
    SendRecord,
)


class SimulationError(RuntimeError):
    """Raised when the engine is configured inconsistently."""


@dataclass
class _InTransit:
    """A message in flight, with the delivery time chosen at send time."""

    send: SendRecord
    delivery_time: int


ProtocolsLike = Union[Protocol, ProtocolAssignment, Mapping[Process, Protocol]]


def _normalise_protocols(protocols: ProtocolsLike) -> ProtocolAssignment:
    if isinstance(protocols, ProtocolAssignment):
        return protocols
    if isinstance(protocols, Protocol):
        return ProtocolAssignment(protocols={}, default=protocols)
    if isinstance(protocols, Mapping):
        return ProtocolAssignment(protocols=dict(protocols))
    raise SimulationError(f"cannot interpret {protocols!r} as a protocol assignment")


class Simulator:
    """Runs a protocol in a bounded context and produces a :class:`Run`.

    Parameters
    ----------
    context:
        The bounded context ``gamma`` (timed network).
    protocols:
        Either a single protocol used by every process, a mapping from process
        to protocol, or a :class:`ProtocolAssignment`.  Unassigned processes
        default to the FFIP relay.
    delivery:
        The environment's delivery strategy (defaults to earliest delivery).
    external_inputs:
        The schedule of spontaneous external messages.
    horizon:
        Number of time steps to simulate.
    """

    def __init__(
        self,
        context: Context,
        protocols: ProtocolsLike = None,
        delivery: Optional[DeliveryStrategy] = None,
        external_inputs: Iterable[ExternalInput | Tuple[int, Process, str]] = (),
        horizon: int = 50,
    ):
        if protocols is None:
            protocols = FloodingFullInformationProtocol()
        self.context = context
        self.protocols = _normalise_protocols(protocols)
        self.delivery = delivery if delivery is not None else EarliestDelivery()
        self.external_inputs = schedule(external_inputs)
        if horizon < 0:
            raise SimulationError("horizon must be non-negative")
        self.horizon = int(horizon)
        for external in self.external_inputs:
            if external.process not in context.timed_network.processes:
                raise SimulationError(
                    f"external input addressed to unknown process {external.process!r}"
                )

    # -- the main loop -------------------------------------------------------

    def run(self) -> Run:
        net = self.context.timed_network
        histories: Dict[Process, History] = {
            process: History.initial(process) for process in net.processes
        }
        timelines: Dict[Process, List[Tuple[int, BasicNode]]] = {
            process: [(0, BasicNode.initial(process))] for process in net.processes
        }
        in_transit: List[_InTransit] = []
        sends: List[SendRecord] = []
        deliveries: List[DeliveryRecord] = []
        external_records: List[ExternalDeliveryRecord] = []

        externals_by_time: Dict[int, List[ExternalInput]] = {}
        for external in self.external_inputs:
            externals_by_time.setdefault(external.time, []).append(external)

        for now in range(1, self.horizon + 1):
            due = [item for item in in_transit if item.delivery_time == now]
            in_transit = [item for item in in_transit if item.delivery_time != now]
            due_externals = externals_by_time.get(now, [])

            incoming: Dict[Process, Dict[str, list]] = {}
            for external in due_externals:
                slot = incoming.setdefault(external.process, {"ext": [], "msg": []})
                slot["ext"].append(external)
            for item in due:
                slot = incoming.setdefault(item.send.destination, {"ext": [], "msg": []})
                slot["msg"].append(item)

            new_sends: List[SendRecord] = []
            for process in net.processes:
                if process not in incoming:
                    continue
                slot = incoming[process]
                observations, delivered_items, delivered_externals = self._build_observations(
                    slot["ext"], slot["msg"]
                )
                previous = histories[process]
                ctx = StepContext(
                    process=process,
                    previous_history=previous,
                    observations=observations,
                    timed_network=net,
                )
                decision = self.protocols.for_process(process).on_step(ctx)
                step = observations + tuple(LocalAction(name) for name in decision.actions)
                new_history = previous.extend(step)
                histories[process] = new_history
                new_node = BasicNode(process, new_history)
                timelines[process].append((now, new_node))

                for item in delivered_items:
                    deliveries.append(
                        DeliveryRecord(send=item.send, receiver_node=new_node, delivery_time=now)
                    )
                for external in delivered_externals:
                    external_records.append(
                        ExternalDeliveryRecord(external=external, receiver_node=new_node)
                    )

                destinations = self._destinations(decision, process, net)
                if destinations:
                    message = Message(
                        sender=process,
                        recipients=tuple(destinations),
                        sender_history=new_history,
                        payload=decision.payload,
                    )
                    for destination in destinations:
                        new_sends.append(
                            SendRecord(
                                message=message,
                                sender_node=new_node,
                                destination=destination,
                                send_time=now,
                            )
                        )

            for record in new_sends:
                sends.append(record)
                delay = self.delivery.checked_delay(
                    record.message, record.destination, record.send_time, net
                )
                in_transit.append(_InTransit(send=record, delivery_time=record.send_time + delay))

        pending = tuple(item.send for item in in_transit)
        return Run(
            context=self.context,
            horizon=self.horizon,
            timelines={p: tuple(t) for p, t in timelines.items()},
            sends=tuple(sends),
            deliveries=tuple(deliveries),
            external_deliveries=tuple(external_records),
            pending=pending,
        )

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _build_observations(
        externals: Sequence[ExternalInput], items: Sequence[_InTransit]
    ) -> Tuple[Tuple[Observation, ...], List[_InTransit], List[ExternalInput]]:
        """Deterministically order this step's receipts.

        External receipts come first (sorted by tag), then internal receipts
        sorted by (send time, sender, recipients).  The ordering is arbitrary
        but fixed so that runs are reproducible.
        """
        sorted_externals = sorted(externals, key=lambda e: e.tag)
        sorted_items = sorted(
            items,
            key=lambda item: (
                item.send.send_time,
                item.send.sender,
                item.send.message.recipients,
            ),
        )
        observations: List[Observation] = [
            ExternalReceipt(external.tag) for external in sorted_externals
        ]
        observations.extend(MessageReceipt(item.send.message) for item in sorted_items)
        return tuple(observations), list(sorted_items), list(sorted_externals)

    @staticmethod
    def _destinations(
        decision: StepDecision, process: Process, net: TimedNetwork
    ) -> Tuple[Process, ...]:
        neighbors = net.out_neighbors(process)
        if decision.send_to is None:
            return neighbors
        for destination in decision.send_to:
            if destination not in neighbors:
                raise SimulationError(
                    f"protocol of {process} asked to send to {destination!r} but there is "
                    f"no channel ({process}, {destination})"
                )
        return tuple(decision.send_to)


def simulate(
    context: Context,
    protocols: ProtocolsLike = None,
    delivery: Optional[DeliveryStrategy] = None,
    external_inputs: Iterable[ExternalInput | Tuple[int, Process, str]] = (),
    horizon: int = 50,
) -> Run:
    """One-call convenience wrapper around :class:`Simulator`."""
    return Simulator(
        context=context,
        protocols=protocols,
        delivery=delivery,
        external_inputs=external_inputs,
        horizon=horizon,
    ).run()
