"""Runs: finite executions of a protocol in a bounded context.

A run of the paper is an infinite sequence of global states; a simulator can
only ever produce a finite prefix, so :class:`Run` represents an execution up
to a ``horizon``.  Messages still in transit at the horizon are recorded as
*pending* (their forced-delivery deadline lies beyond the horizon or simply
was not reached); everything delivered inside the horizon respects the channel
bounds, which :meth:`Run.validate` checks.

The run records, for every process, its *timeline*: the sequence of basic
nodes (local states) it passes through together with the time at which each
node first appears (``time_r(sigma)`` in the paper).  It also records every
send and every delivery, which is what the bounds-graph construction of the
core package consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..core.nodes import BasicNode, GeneralNode
from .context import Context, ExternalInput
from .messages import (
    ExternalReceipt,
    History,
    LocalAction,
    Message,
    MessageReceipt,
    Observation,
)
from .network import Process, TimedNetwork, timed_network

#: Version stamp of the :meth:`Run.to_dict` wire format.
RUN_FORMAT_VERSION = 1


class RunError(ValueError):
    """Raised when a run is queried about nodes or chains it does not contain."""


class RunFormatError(RunError):
    """Raised by :meth:`Run.from_dict` on malformed or unsupported payloads."""


class RunValidationError(RunError):
    """Raised by :meth:`Run.validate` when the execution violates the model."""


@dataclass(frozen=True)
class SendRecord:
    """A message sent at ``send_time`` from ``sender_node`` towards ``destination``."""

    message: Message
    sender_node: BasicNode
    destination: Process
    send_time: int

    @property
    def sender(self) -> Process:
        return self.sender_node.process


@dataclass(frozen=True)
class DeliveryRecord:
    """A delivered message: the send plus the receiving node and time."""

    send: SendRecord
    receiver_node: BasicNode
    delivery_time: int

    @property
    def sender_node(self) -> BasicNode:
        return self.send.sender_node

    @property
    def sender(self) -> Process:
        return self.send.sender

    @property
    def destination(self) -> Process:
        return self.send.destination

    @property
    def send_time(self) -> int:
        return self.send.send_time

    @property
    def delay(self) -> int:
        return self.delivery_time - self.send.send_time


@dataclass(frozen=True)
class ExternalDeliveryRecord:
    """A spontaneous external message delivered to ``process`` at ``time``."""

    external: ExternalInput
    receiver_node: BasicNode

    @property
    def process(self) -> Process:
        return self.external.process

    @property
    def time(self) -> int:
        return self.external.time

    @property
    def tag(self) -> str:
        return self.external.tag


@dataclass(frozen=True)
class ActionRecord:
    """A local action performed at a node."""

    process: Process
    action: str
    node: BasicNode
    time: int


class _RunEncoder:
    """Encodes the history/message DAG of a run into flat, shared tables.

    Histories embed messages which embed earlier histories; naive recursive
    serialisation would duplicate every shared sub-history exponentially.
    The encoder assigns each distinct :class:`History` and :class:`Message`
    one integer id, so the emitted tables grow linearly with the run and the
    deep structure is reconstructed by reference.  Entries are appended in
    dependency order (children first), though the decoder resolves references
    lazily and does not rely on it.

    The id tables are keyed by the values themselves, which are hash-consed
    (:mod:`repro.simulation.interning`): their hashes are cached at
    construction and ``__eq__`` degrades to ``is`` within a pool, so each
    table lookup is an O(1) intern-id probe that never touches the deep
    structure.  Keying by equality (not raw ``id()``) keeps the emitted
    tables canonical even for runs that mix structurally equal values from
    different pools.
    """

    def __init__(self) -> None:
        self.histories: List[Any] = []
        self.messages: List[Any] = []
        self._history_ids: Dict[History, int] = {}
        self._message_ids: Dict[Message, int] = {}

    def history_id(self, history: History) -> int:
        existing = self._history_ids.get(history)
        if existing is not None:
            return existing
        steps = [
            [self._observation(observation) for observation in step]
            for step in history.steps
        ]
        index = len(self.histories)
        self.histories.append([history.process, steps])
        self._history_ids[history] = index
        return index

    def message_id(self, message: Message) -> int:
        existing = self._message_ids.get(message)
        if existing is not None:
            return existing
        payload = [
            message.sender,
            list(message.recipients),
            self.history_id(message.sender_history),
            message.payload,
        ]
        index = len(self.messages)
        self.messages.append(payload)
        self._message_ids[message] = index
        return index

    def node_id(self, node: BasicNode) -> int:
        """A basic node is ``(process, history)`` with the process implied."""
        return self.history_id(node.history)

    def send(self, record: SendRecord) -> List[Any]:
        return [
            self.message_id(record.message),
            self.node_id(record.sender_node),
            record.destination,
            record.send_time,
        ]

    def _observation(self, observation: Observation) -> List[Any]:
        if isinstance(observation, ExternalReceipt):
            return ["ext", observation.tag]
        if isinstance(observation, LocalAction):
            return ["act", observation.name]
        if isinstance(observation, MessageReceipt):
            return ["recv", self.message_id(observation.message)]
        raise RunError(f"cannot serialise observation {observation!r}")


class _RunDecoder:
    """Lazily rebuilds histories and messages from the encoder's tables."""

    def __init__(self, histories: Sequence[Any], messages: Sequence[Any]) -> None:
        self._histories = histories
        self._messages = messages
        self._history_cache: Dict[int, History] = {}
        self._message_cache: Dict[int, Message] = {}

    @staticmethod
    def _entry(table: Sequence[Any], index: int, kind: str) -> Any:
        """Table lookup that treats negative ids as corruption, not wraparound."""
        if not isinstance(index, int) or isinstance(index, bool) or index < 0:
            raise RunFormatError(f"bad {kind} reference {index!r}")
        try:
            return table[index]
        except IndexError:
            raise RunFormatError(f"dangling {kind} reference {index}") from None

    def history(self, index: int) -> History:
        cached = self._history_cache.get(index)
        if cached is not None:
            return cached
        try:
            process, steps = self._entry(self._histories, index, "history")
        except (TypeError, ValueError) as exc:
            raise RunFormatError(f"bad history entry at index {index}") from exc
        value = History(
            process,
            tuple(tuple(self._observation(entry) for entry in step) for step in steps),
        )
        self._history_cache[index] = value
        return value

    def message(self, index: int) -> Message:
        cached = self._message_cache.get(index)
        if cached is not None:
            return cached
        try:
            sender, recipients, history_id, payload = self._entry(
                self._messages, index, "message"
            )
        except (TypeError, ValueError) as exc:
            raise RunFormatError(f"bad message entry at index {index}") from exc
        value = Message(sender, tuple(recipients), self.history(history_id), payload)
        self._message_cache[index] = value
        return value

    def node(self, index: int) -> BasicNode:
        history = self.history(index)
        return BasicNode(history.process, history)

    def send(self, entry: Sequence[Any]) -> SendRecord:
        try:
            message_id, node_id, destination, send_time = entry
        except (TypeError, ValueError) as exc:
            raise RunFormatError(f"bad send entry {entry!r}") from exc
        return SendRecord(
            message=self.message(message_id),
            sender_node=self.node(node_id),
            destination=destination,
            send_time=int(send_time),
        )

    def _observation(self, entry: Sequence[Any]) -> Observation:
        try:
            kind, value = entry
        except (TypeError, ValueError) as exc:
            raise RunFormatError(f"bad observation entry {entry!r}") from exc
        if kind == "ext":
            return ExternalReceipt(value)
        if kind == "act":
            return LocalAction(value)
        if kind == "recv":
            return MessageReceipt(self.message(value))
        raise RunFormatError(f"unknown observation kind {kind!r}")


@dataclass(eq=False)
class Run:
    """A finite execution prefix of a protocol in a bounded context."""

    context: Context
    horizon: int
    timelines: Mapping[Process, Tuple[Tuple[int, BasicNode], ...]]
    sends: Tuple[SendRecord, ...]
    deliveries: Tuple[DeliveryRecord, ...]
    external_deliveries: Tuple[ExternalDeliveryRecord, ...]
    pending: Tuple[SendRecord, ...] = ()

    # Derived indexes, built lazily.
    _times: Optional[Dict[BasicNode, int]] = field(default=None, repr=False)
    _delivery_index: Optional[Dict[Tuple[BasicNode, Process], DeliveryRecord]] = field(
        default=None, repr=False
    )
    _send_index: Optional[Dict[Tuple[BasicNode, Process], SendRecord]] = field(
        default=None, repr=False
    )

    # Runs are mutable containers (lazy indexes), so they stay unhashable.
    __hash__ = None

    def __eq__(self, other: object) -> bool:
        """Semantic equality over the recorded execution.

        Compares the execution itself (context, horizon, timelines, and the
        send/delivery/external/pending records) and ignores the lazily built
        derived indexes -- the generated dataclass ``__eq__`` compared those
        too, so two equal runs could compare unequal depending on which
        queries had been issued, on top of re-walking the deep history DAG.
        All leaf values are hash-consed, so the record comparisons degrade to
        pointer checks and whole-run equality is linear in the number of
        records (well under a second even on the large flooding scenarios).
        """
        if self is other:
            return True
        if not isinstance(other, Run):
            return NotImplemented
        return (
            self.horizon == other.horizon
            and self.context == other.context
            and self.timelines == other.timelines
            and self.sends == other.sends
            and self.deliveries == other.deliveries
            and self.external_deliveries == other.external_deliveries
            and self.pending == other.pending
        )

    # -- derived indexes -----------------------------------------------------

    @property
    def timed_network(self) -> TimedNetwork:
        return self.context.timed_network

    @property
    def processes(self) -> Tuple[Process, ...]:
        return self.timed_network.processes

    def _time_index(self) -> Dict[BasicNode, int]:
        if self._times is None:
            times: Dict[BasicNode, int] = {}
            for process, timeline in self.timelines.items():
                for time, node in timeline:
                    times[node] = time
            self._times = times
        return self._times

    def _deliveries_by_send(self) -> Dict[Tuple[BasicNode, Process], DeliveryRecord]:
        if self._delivery_index is None:
            self._delivery_index = {
                (record.sender_node, record.destination): record
                for record in self.deliveries
            }
        return self._delivery_index

    def _sends_by_node(self) -> Dict[Tuple[BasicNode, Process], SendRecord]:
        if self._send_index is None:
            self._send_index = {
                (record.sender_node, record.destination): record for record in self.sends
            }
        return self._send_index

    # -- node queries ----------------------------------------------------------

    def nodes(self) -> Iterator[BasicNode]:
        """All basic nodes appearing in the run (per process, in timeline order)."""
        for process in self.processes:
            for _, node in self.timelines[process]:
                yield node

    def nodes_of(self, process: Process) -> Tuple[BasicNode, ...]:
        return tuple(node for _, node in self.timelines[process])

    def appears(self, node: BasicNode) -> bool:
        return node in self._time_index()

    def time_of(self, node: BasicNode) -> int:
        """``time_r(sigma)``: the first time at which the node's local state holds."""
        try:
            return self._time_index()[node]
        except KeyError:
            raise RunError(f"node {node.describe()} does not appear in this run") from None

    def node_at(self, process: Process, time: int) -> BasicNode:
        """The basic node of ``process`` whose local state holds at ``time``."""
        if time < 0 or time > self.horizon:
            raise RunError(f"time {time} outside run horizon [0, {self.horizon}]")
        timeline = self.timelines[process]
        current = timeline[0][1]
        for node_time, node in timeline:
            if node_time <= time:
                current = node
            else:
                break
        return current

    def final_node(self, process: Process) -> BasicNode:
        return self.timelines[process][-1][1]

    def initial_node(self, process: Process) -> BasicNode:
        return self.timelines[process][0][1]

    def successor(self, node: BasicNode) -> Optional[BasicNode]:
        """The next node on the same timeline, or ``None`` if it is the last."""
        timeline = self.timelines[node.process]
        for index, (_, candidate) in enumerate(timeline):
            if candidate == node:
                if index + 1 < len(timeline):
                    return timeline[index + 1][1]
                return None
        raise RunError(f"node {node.describe()} does not appear in this run")

    def predecessor(self, node: BasicNode) -> Optional[BasicNode]:
        """The previous node on the same timeline, or ``None`` for the initial node."""
        if not self.appears(node):
            raise RunError(f"node {node.describe()} does not appear in this run")
        return node.predecessor()

    # -- message queries -----------------------------------------------------

    def delivery_of(self, sender_node: BasicNode, destination: Process) -> Optional[DeliveryRecord]:
        """The delivery of the message sent at ``sender_node`` to ``destination``, if any."""
        return self._deliveries_by_send().get((sender_node, destination))

    def send_of(self, sender_node: BasicNode, destination: Process) -> Optional[SendRecord]:
        return self._sends_by_node().get((sender_node, destination))

    def deliveries_to(self, process: Process) -> Tuple[DeliveryRecord, ...]:
        return tuple(d for d in self.deliveries if d.destination == process)

    def deliveries_at(self, node: BasicNode) -> Tuple[DeliveryRecord, ...]:
        """The deliveries whose receipt created ``node``."""
        return tuple(d for d in self.deliveries if d.receiver_node == node)

    # -- general nodes ---------------------------------------------------------

    def resolve(self, theta: GeneralNode) -> Optional[BasicNode]:
        """``basic(theta, r)`` (Definition 4), or ``None`` if the chain is unresolved.

        The chain is unresolved when the base node does not appear in the run,
        when some process along the path was never sent the chain message, or
        when a chain message is still pending at the horizon.
        """
        current = theta.base
        if not self.appears(current):
            return None
        for hop in theta.path[1:]:
            delivery = self.delivery_of(current, hop)
            if delivery is None:
                return None
            current = delivery.receiver_node
        return current

    def time_of_general(self, theta: GeneralNode) -> int:
        """``time_r(theta)``: the time of the corresponding basic node."""
        resolved = self.resolve(theta)
        if resolved is None:
            raise RunError(f"general node {theta.describe()} does not appear in this run")
        return self.time_of(resolved)

    def general_appears(self, theta: GeneralNode) -> bool:
        return self.resolve(theta) is not None

    # -- causality --------------------------------------------------------------

    def past(self, node: BasicNode) -> frozenset:
        """``past(r, sigma)``: all basic nodes that happen-before ``node``."""
        from ..core.causality import past_nodes

        if not self.appears(node):
            raise RunError(f"node {node.describe()} does not appear in this run")
        return past_nodes(node)

    def happens_before(self, earlier: BasicNode, later: BasicNode) -> bool:
        """Lamport's happens-before over basic nodes of this run (Definition 2)."""
        from ..core.causality import happens_before

        return happens_before(earlier, later)

    # -- actions -----------------------------------------------------------------

    def actions(self) -> Tuple[ActionRecord, ...]:
        """All local actions performed in the run, with their nodes and times."""
        records: List[ActionRecord] = []
        for process in self.processes:
            for time, node in self.timelines[process]:
                if node.is_initial:
                    continue
                for observation in node.history.last_step:
                    if isinstance(observation, LocalAction):
                        records.append(ActionRecord(process, observation.name, node, time))
        return tuple(records)

    def find_action(self, process: Process, action: str) -> Optional[ActionRecord]:
        """The first occurrence of ``action`` at ``process``, or ``None``."""
        for record in self.actions():
            if record.process == process and record.action == action:
                return record
        return None

    def action_time(self, process: Process, action: str) -> Optional[int]:
        record = self.find_action(process, action)
        return None if record is None else record.time

    # -- validation ---------------------------------------------------------------

    def validate(self, require_forced_delivery: bool = True) -> None:
        """Check that this execution is legal for the bcm model.

        * every delivered message respects its channel's ``[L, U]`` window;
        * every pending message's forced-delivery deadline lies beyond the
          horizon (unless ``require_forced_delivery`` is False);
        * timelines start at time 0 with the initial node and are strictly
          increasing in time, with each node extending its predecessor by one
          step;
        * every non-initial node's step contains at least one receipt
          (processes act only when scheduled by a delivery).
        """
        bounds = self.timed_network
        for record in self.deliveries:
            lower = bounds.L(record.sender, record.destination)
            upper = bounds.U(record.sender, record.destination)
            if not lower <= record.delay <= upper:
                raise RunValidationError(
                    f"delivery on channel ({record.sender}, {record.destination}) "
                    f"took {record.delay} time units, outside [{lower}, {upper}]"
                )
        if require_forced_delivery:
            for record in self.pending:
                deadline = record.send_time + bounds.U(record.sender, record.destination)
                if deadline <= self.horizon:
                    raise RunValidationError(
                        f"message from {record.sender} to {record.destination} sent at "
                        f"{record.send_time} should have been delivered by {deadline} "
                        f"but is still pending at horizon {self.horizon}"
                    )
        for process in self.processes:
            timeline = self.timelines[process]
            if not timeline:
                raise RunValidationError(f"process {process} has an empty timeline")
            first_time, first_node = timeline[0]
            if first_time != 0 or not first_node.is_initial:
                raise RunValidationError(
                    f"process {process} must start at time 0 in its initial node"
                )
            for (prev_time, prev_node), (time, node) in zip(timeline, timeline[1:]):
                if time <= prev_time:
                    raise RunValidationError(
                        f"process {process} timeline times must be strictly increasing"
                    )
                if node.predecessor() != prev_node:
                    raise RunValidationError(
                        f"process {process} node at time {time} does not extend its "
                        "predecessor by exactly one step"
                    )
                has_receipt = any(
                    not isinstance(obs, LocalAction) for obs in node.history.last_step
                )
                if not has_receipt:
                    raise RunValidationError(
                        f"process {process} took a step at time {time} without receiving "
                        "any message (processes are event-driven)"
                    )

    # -- serialisation ------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable, lossless snapshot of this run.

        Histories and messages are emitted once each into shared tables (the
        payload DAG is heavily shared between nodes), so the output size is
        linear in the run.  :meth:`from_dict` inverts the encoding exactly:
        timelines, send/delivery/external records, pending messages, horizon
        and the timed network all round-trip.
        """
        encoder = _RunEncoder()

        send_table: List[SendRecord] = []
        send_indexes: Dict[SendRecord, int] = {}

        def send_index(record: SendRecord) -> int:
            index = send_indexes.get(record)
            if index is None:
                index = len(send_table)
                send_table.append(record)
                send_indexes[record] = index
            return index

        sends = [send_index(record) for record in self.sends]
        deliveries = [
            [
                send_index(record.send),
                encoder.node_id(record.receiver_node),
                record.delivery_time,
            ]
            for record in self.deliveries
        ]
        pending = [send_index(record) for record in self.pending]
        externals = [
            [
                record.external.time,
                record.external.process,
                record.external.tag,
                encoder.node_id(record.receiver_node),
            ]
            for record in self.external_deliveries
        ]
        # Emit timelines in network process order so the encoding is canonical
        # (independent of the timeline mapping's insertion order).
        ordered = [p for p in self.processes if p in self.timelines]
        ordered += [p for p in self.timelines if p not in set(ordered)]
        timelines = {
            process: [[time, encoder.node_id(node)] for time, node in self.timelines[process]]
            for process in ordered
        }
        net = self.timed_network
        return {
            "format": RUN_FORMAT_VERSION,
            "horizon": self.horizon,
            "context": {
                "description": self.context.description,
                "processes": list(net.processes),
                "channels": [
                    [i, j, net.L(i, j), net.U(i, j)] for i, j in net.channels
                ],
            },
            "histories": encoder.histories,
            "messages": encoder.messages,
            "send_table": [encoder.send(record) for record in send_table],
            "timelines": timelines,
            "sends": sends,
            "deliveries": deliveries,
            "external_deliveries": externals,
            "pending": pending,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Run":
        """Rebuild a :class:`Run` from :meth:`to_dict` output (or parsed JSON)."""
        if not isinstance(data, Mapping):
            raise RunFormatError(f"expected a mapping, got {type(data).__name__}")
        version = data.get("format")
        if version != RUN_FORMAT_VERSION:
            raise RunFormatError(
                f"unsupported run format {version!r}; expected {RUN_FORMAT_VERSION}"
            )
        try:
            context_data = data["context"]
            channels = {
                (i, j): (lower, upper)
                for i, j, lower, upper in context_data["channels"]
            }
            net = timed_network(channels, processes=context_data["processes"])
            context = Context(net, description=context_data.get("description", ""))
            decoder = _RunDecoder(data["histories"], data["messages"])
            send_table = tuple(decoder.send(entry) for entry in data["send_table"])

            def send_entry(index: Any) -> SendRecord:
                return _RunDecoder._entry(send_table, index, "send")

            sends = tuple(send_entry(index) for index in data["sends"])
            deliveries = tuple(
                DeliveryRecord(
                    send=send_entry(send_id),
                    receiver_node=decoder.node(node_id),
                    delivery_time=int(delivery_time),
                )
                for send_id, node_id, delivery_time in data["deliveries"]
            )
            externals = tuple(
                ExternalDeliveryRecord(
                    external=ExternalInput(int(time), process, tag),
                    receiver_node=decoder.node(node_id),
                )
                for time, process, tag, node_id in data["external_deliveries"]
            )
            raw_timelines = data["timelines"]
            ordered = [p for p in net.processes if p in raw_timelines]
            ordered += [p for p in raw_timelines if p not in set(ordered)]
            timelines = {
                process: tuple(
                    (int(time), decoder.node(node_id))
                    for time, node_id in raw_timelines[process]
                )
                for process in ordered
            }
            pending = tuple(send_entry(index) for index in data["pending"])
            horizon = int(data["horizon"])
        except RunFormatError:
            raise
        except (KeyError, IndexError, TypeError, ValueError) as exc:
            raise RunFormatError(f"malformed run payload: {exc}") from exc
        except RecursionError:
            raise RunFormatError(
                "malformed run payload: cyclic history/message references"
            ) from None
        return cls(
            context=context,
            horizon=horizon,
            timelines=timelines,
            sends=sends,
            deliveries=deliveries,
            external_deliveries=externals,
            pending=pending,
        )

    # -- convenience --------------------------------------------------------------

    def describe(self) -> str:
        lines = [f"Run(horizon={self.horizon})"]
        for process in self.processes:
            entries = ", ".join(
                f"t={time}:{node.describe()}" for time, node in self.timelines[process]
            )
            lines.append(f"  {process}: {entries}")
        lines.append(f"  deliveries: {len(self.deliveries)}, pending: {len(self.pending)}")
        return "\n".join(lines)
