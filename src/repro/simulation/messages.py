"""Messages, observations, and local histories (local states) for the bcm model.

In the paper a process's local state is its initial state followed by the
sequence of events it has observed.  Because the coordination analysis is
carried out for *full-information* protocols, the message payload of every
internal message is the sender's entire local history at the moment of
sending.  We therefore model

* :class:`History` -- an immutable local state: a process name plus the
  sequence of *steps* the process has taken so far, where each step is the
  tuple of :class:`Observation` objects the process observed atomically (a
  process is scheduled only when messages are delivered to it, and all
  messages delivered at the same instant are observed in a single step,
  together with any local actions the protocol performs in response); and
* :class:`Message` -- an internal message carrying the sender's history plus a
  recipients header (the paper assumes every message contains a header
  specifying its intended recipients, which is what makes zigzag patterns
  detectable).

Histories form a DAG: a receipt observation embeds the sender's history, which
in turn embeds earlier histories.  All objects are immutable and hashable,
with hashes cached at construction time so that comparing deep histories stays
cheap (shared sub-histories are compared by identity first).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from .network import Process

#: Sentinel tag for the spontaneous external message that triggers C's "go".
GO_TRIGGER = "mu_go"

#: A step: the observations a process makes in one atomic scheduling instant.
Step = Tuple["Observation", ...]


class Observation:
    """Base class for everything a process can observe locally."""

    __slots__ = ("_hash",)

    def describe(self) -> str:
        raise NotImplementedError

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


class ExternalReceipt(Observation):
    """Receipt of a spontaneous external message (an element of ``E``)."""

    __slots__ = ("tag",)

    def __init__(self, tag: str):
        object.__setattr__(self, "tag", str(tag))
        object.__setattr__(self, "_hash", hash(("ext", self.tag)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("ExternalReceipt is immutable")

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return isinstance(other, ExternalReceipt) and other.tag == self.tag

    def __hash__(self) -> int:
        return self._hash

    def describe(self) -> str:
        return f"ext({self.tag})"


class LocalAction(Observation):
    """An application-level action performed by the process (e.g. ``a`` or ``b``)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        object.__setattr__(self, "name", str(name))
        object.__setattr__(self, "_hash", hash(("act", self.name)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("LocalAction is immutable")

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return isinstance(other, LocalAction) and other.name == self.name

    def __hash__(self) -> int:
        return self._hash

    def describe(self) -> str:
        return f"act({self.name})"


class Message:
    """An internal message.

    Attributes
    ----------
    sender:
        The sending process.
    recipients:
        Header listing every process the message was sent to (the same
        logical message is flooded to all of them under an FFIP).
    sender_history:
        The sender's full local history at the moment of sending.  This is the
        full-information payload; it also uniquely identifies the basic node
        at which the message was sent.
    payload:
        Optional application payload (a short string), unused by the theory
        but convenient for examples.
    """

    __slots__ = ("sender", "recipients", "sender_history", "payload", "_hash")

    def __init__(
        self,
        sender: Process,
        recipients: Tuple[Process, ...],
        sender_history: "History",
        payload: Optional[str] = None,
    ):
        object.__setattr__(self, "sender", str(sender))
        object.__setattr__(self, "recipients", tuple(recipients))
        object.__setattr__(self, "sender_history", sender_history)
        object.__setattr__(self, "payload", payload)
        object.__setattr__(
            self,
            "_hash",
            hash(("msg", self.sender, self.recipients, self.sender_history, self.payload)),
        )

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Message is immutable")

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Message):
            return NotImplemented
        return (
            self._hash == other._hash
            and self.sender == other.sender
            and self.recipients == other.recipients
            and self.payload == other.payload
            and self.sender_history == other.sender_history
        )

    def __hash__(self) -> int:
        return self._hash

    def describe(self) -> str:
        extra = f", payload={self.payload}" if self.payload is not None else ""
        return f"Message(from={self.sender}, to={list(self.recipients)}{extra})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


class MessageReceipt(Observation):
    """Receipt of an internal message."""

    __slots__ = ("message",)

    def __init__(self, message: Message):
        object.__setattr__(self, "message", message)
        object.__setattr__(self, "_hash", hash(("recv", message)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("MessageReceipt is immutable")

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, MessageReceipt):
            return NotImplemented
        return self.message == other.message

    def __hash__(self) -> int:
        return self._hash

    @property
    def sender(self) -> Process:
        return self.message.sender

    def describe(self) -> str:
        return f"recv(from={self.message.sender})"


class History:
    """An immutable local state: the sequence of steps taken by one process.

    The empty history (``steps == ()``) is the process's initial state.  Each
    step is the non-empty tuple of observations (message receipts, external
    receipts, and local actions) the process observed at one scheduling
    instant.  Histories are extended with :meth:`extend`; prefixes (earlier
    local states of the same process) are produced by :meth:`prefixes`.
    """

    __slots__ = ("process", "steps", "_hash")

    def __init__(self, process: Process, steps: Tuple[Step, ...] = ()):
        normalised = tuple(tuple(step) for step in steps)
        if any(not step for step in normalised):
            raise ValueError("history steps must be non-empty")
        object.__setattr__(self, "process", str(process))
        object.__setattr__(self, "steps", normalised)
        object.__setattr__(self, "_hash", hash(("hist", self.process, normalised)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("History is immutable")

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, History):
            return NotImplemented
        return (
            self._hash == other._hash
            and self.process == other.process
            and self.steps == other.steps
        )

    def __hash__(self) -> int:
        return self._hash

    # -- construction ------------------------------------------------------

    @classmethod
    def initial(cls, process: Process) -> "History":
        """The initial local state of ``process``."""
        return cls(process, ())

    def extend(self, observations: Tuple[Observation, ...]) -> "History":
        """The local state obtained by observing ``observations`` in one step."""
        step = tuple(observations)
        if not step:
            raise ValueError("cannot extend a history with an empty step")
        return History(self.process, self.steps + (step,))

    # -- queries -----------------------------------------------------------

    @property
    def is_initial(self) -> bool:
        return not self.steps

    def __len__(self) -> int:
        """The number of steps taken so far."""
        return len(self.steps)

    @property
    def last_step(self) -> Step:
        if not self.steps:
            raise ValueError("the initial history has no last step")
        return self.steps[-1]

    def predecessor(self) -> Optional["History"]:
        """The local state one step earlier, or ``None`` for the initial state."""
        if not self.steps:
            return None
        return History(self.process, self.steps[:-1])

    def prefixes(self, include_self: bool = True) -> Iterator["History"]:
        """All earlier local states of this process (shortest first)."""
        end = len(self.steps) + 1 if include_self else len(self.steps)
        for k in range(end):
            yield History(self.process, self.steps[:k])

    def is_prefix_of(self, other: "History") -> bool:
        """Whether this local state occurs (weakly) before ``other`` on the same timeline."""
        if self.process != other.process or len(self.steps) > len(other.steps):
            return False
        return other.steps[: len(self.steps)] == self.steps

    def observations(self) -> Iterator[Observation]:
        """All observations, flattened across steps, oldest first."""
        for step in self.steps:
            yield from step

    def receipts(self) -> Iterator[MessageReceipt]:
        for event in self.observations():
            if isinstance(event, MessageReceipt):
                yield event

    def external_receipts(self) -> Iterator[ExternalReceipt]:
        for event in self.observations():
            if isinstance(event, ExternalReceipt):
                yield event

    def actions(self) -> Iterator[LocalAction]:
        for event in self.observations():
            if isinstance(event, LocalAction):
                yield event

    def has_action(self, name: str) -> bool:
        return any(action.name == name for action in self.actions())

    def has_external(self, tag: str) -> bool:
        return any(ext.tag == tag for ext in self.external_receipts())

    def describe(self) -> str:
        inner = "; ".join(
            ", ".join(event.describe() for event in step) for step in self.steps
        )
        return f"{self.process}[{inner}]"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"History({self.describe()})"
