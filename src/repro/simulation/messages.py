"""Messages, observations, and local histories (local states) for the bcm model.

In the paper a process's local state is its initial state followed by the
sequence of events it has observed.  Because the coordination analysis is
carried out for *full-information* protocols, the message payload of every
internal message is the sender's entire local history at the moment of
sending.  We therefore model

* :class:`History` -- an immutable local state: a process name plus the
  sequence of *steps* the process has taken so far, where each step is the
  tuple of :class:`Observation` objects the process observed atomically (a
  process is scheduled only when messages are delivered to it, and all
  messages delivered at the same instant are observed in a single step,
  together with any local actions the protocol performs in response); and
* :class:`Message` -- an internal message carrying the sender's history plus a
  recipients header (the paper assumes every message contains a header
  specifying its intended recipients, which is what makes zigzag patterns
  detectable).

Histories form a DAG: a receipt observation embeds the sender's history, which
in turn embeds earlier histories.  All objects are immutable and **hash-consed**
through :mod:`repro.simulation.interning`: constructing a structurally equal
value returns the *same object*, so ``__eq__`` degrades to ``is`` (a guarded
structural fallback remains for values interned in different pools).  A
history is a persistent parent-pointer chain (``parent`` + ``last_step``);
``extend`` is O(step) and never copies the prefix, while the ``steps`` tuple
of the old representation is materialised on demand for compatibility.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from . import interning as _interning
from ..obs import metrics as _metrics
from .network import Process

#: Sentinel tag for the spontaneous external message that triggers C's "go".
GO_TRIGGER = "mu_go"

#: A step: the observations a process makes in one atomic scheduling instant.
Step = Tuple["Observation", ...]


class Observation:
    """Base class for everything a process can observe locally."""

    __slots__ = ("_hash",)

    def describe(self) -> str:
        raise NotImplementedError

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


class ExternalReceipt(Observation):
    """Receipt of a spontaneous external message (an element of ``E``)."""

    __slots__ = ("tag",)

    def __new__(cls, tag: str) -> "ExternalReceipt":
        tag = str(tag)
        intern = cls is ExternalReceipt
        if intern:
            cached = _interning._POOL.externals.get(tag)
            if cached is not None:
                return cached
        self = object.__new__(cls)
        object.__setattr__(self, "tag", tag)
        object.__setattr__(self, "_hash", hash(("ext", tag)))
        if intern:
            _interning._POOL.externals[tag] = self
        return self

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("ExternalReceipt is immutable")

    def __reduce__(self):
        return (ExternalReceipt, (self.tag,))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return isinstance(other, ExternalReceipt) and other.tag == self.tag

    def __hash__(self) -> int:
        return self._hash

    def describe(self) -> str:
        return f"ext({self.tag})"


class LocalAction(Observation):
    """An application-level action performed by the process (e.g. ``a`` or ``b``)."""

    __slots__ = ("name",)

    def __new__(cls, name: str) -> "LocalAction":
        name = str(name)
        intern = cls is LocalAction
        if intern:
            cached = _interning._POOL.actions.get(name)
            if cached is not None:
                return cached
        self = object.__new__(cls)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash", hash(("act", name)))
        if intern:
            _interning._POOL.actions[name] = self
        return self

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("LocalAction is immutable")

    def __reduce__(self):
        return (LocalAction, (self.name,))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return isinstance(other, LocalAction) and other.name == self.name

    def __hash__(self) -> int:
        return self._hash

    def describe(self) -> str:
        return f"act({self.name})"


class Message:
    """An internal message.

    Attributes
    ----------
    sender:
        The sending process.
    recipients:
        Header listing every process the message was sent to (the same
        logical message is flooded to all of them under an FFIP).
    sender_history:
        The sender's full local history at the moment of sending.  This is the
        full-information payload; it also uniquely identifies the basic node
        at which the message was sent.
    payload:
        Optional application payload (a short string), unused by the theory
        but convenient for examples.
    """

    __slots__ = ("sender", "recipients", "sender_history", "payload", "_hash")

    def __new__(
        cls,
        sender: Process,
        recipients: Tuple[Process, ...],
        sender_history: "History",
        payload: Optional[str] = None,
    ) -> "Message":
        sender = str(sender)
        recipients = tuple(recipients)
        intern = cls is Message
        if intern:
            key = (sender, recipients, sender_history, payload)
            cached = _interning._POOL.messages.get(key)
            if cached is not None:
                return cached
        self = object.__new__(cls)
        object.__setattr__(self, "sender", sender)
        object.__setattr__(self, "recipients", recipients)
        object.__setattr__(self, "sender_history", sender_history)
        object.__setattr__(self, "payload", payload)
        object.__setattr__(
            self,
            "_hash",
            hash(("msg", sender, recipients, sender_history, payload)),
        )
        if intern:
            _interning._POOL.messages[key] = self
        return self

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Message is immutable")

    def __reduce__(self):
        return (Message, (self.sender, self.recipients, self.sender_history, self.payload))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Message):
            return NotImplemented
        return (
            self._hash == other._hash
            and self.sender == other.sender
            and self.recipients == other.recipients
            and self.payload == other.payload
            and self.sender_history == other.sender_history
        )

    def __hash__(self) -> int:
        return self._hash

    def describe(self) -> str:
        extra = f", payload={self.payload}" if self.payload is not None else ""
        return f"Message(from={self.sender}, to={list(self.recipients)}{extra})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


class MessageReceipt(Observation):
    """Receipt of an internal message."""

    __slots__ = ("message",)

    def __new__(cls, message: Message) -> "MessageReceipt":
        intern = cls is MessageReceipt
        if intern:
            cached = _interning._POOL.receipts.get(message)
            if cached is not None:
                return cached
        self = object.__new__(cls)
        object.__setattr__(self, "message", message)
        object.__setattr__(self, "_hash", hash(("recv", message)))
        if intern:
            _interning._POOL.receipts[message] = self
        return self

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("MessageReceipt is immutable")

    def __reduce__(self):
        return (MessageReceipt, (self.message,))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, MessageReceipt):
            return NotImplemented
        return self.message == other.message

    def __hash__(self) -> int:
        return self._hash

    @property
    def sender(self) -> Process:
        return self.message.sender

    def describe(self) -> str:
        return f"recv(from={self.message.sender})"


class History:
    """An immutable local state: the sequence of steps taken by one process.

    The empty history (``len(h) == 0``) is the process's initial state.  Each
    step is the non-empty tuple of observations (message receipts, external
    receipts, and local actions) the process observed at one scheduling
    instant.  Histories are extended with :meth:`extend`; prefixes (earlier
    local states of the same process) are produced by :meth:`prefixes`.

    Internally a history is a persistent parent-pointer chain: ``parent`` is
    the one-step-earlier state (``None`` for the initial state) and
    ``last_step`` the step that extended it.  Chains are hash-consed, so the
    prefixes of a history *are* its ancestors and extending never copies.
    The legacy ``steps`` tuple is materialised on demand.
    """

    __slots__ = ("process", "parent", "_last_step", "_len", "_hash")

    def __new__(cls, process: Process, steps: Tuple[Step, ...] = ()) -> "History":
        # Structural constructor kept for compatibility (decoders, tests):
        # fold the steps through the intern pool so the resulting chain is
        # the canonical interned one, prefix by prefix.
        history = cls._initial_interned(str(process))
        for step in steps:
            history = history.extend(step)
        return history

    @classmethod
    def _initial_interned(cls, process: str) -> "History":
        pool = _interning._POOL
        cached = pool.history_initials.get(process)
        if cached is not None:
            return cached
        self = object.__new__(History)
        object.__setattr__(self, "process", process)
        object.__setattr__(self, "parent", None)
        object.__setattr__(self, "_last_step", None)
        object.__setattr__(self, "_len", 0)
        object.__setattr__(self, "_hash", hash(("hist", process)))
        pool.history_initials[process] = self
        return self

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("History is immutable")

    def __reduce__(self):
        # Unpickling re-interns (shared sub-structure is preserved by the
        # pickle memo).  Pickle's own traversal is recursive, so histories
        # whose message relay-nesting approaches the interpreter recursion
        # limit cannot be pickled directly -- ship whole runs across process
        # boundaries as ``Run.to_dict()`` payloads instead (flat tables).
        return (History, (self.process, self.steps))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, History):
            return NotImplemented
        if (
            self._hash != other._hash
            or self._len != other._len
            or self.process != other.process
        ):
            return False
        # Guarded fallback: within one intern pool structurally equal
        # histories are identical, so this only runs for values that crossed
        # pools (pool swap, unpickling into another process).  Both sides are
        # canonicalised into the current pool (id-memoized, linear in the
        # DAG) so even repeated deep comparisons never re-walk the structure.
        return canonicalize_history(self) is canonicalize_history(other)

    def __hash__(self) -> int:
        return self._hash

    # -- construction ------------------------------------------------------

    @classmethod
    def initial(cls, process: Process) -> "History":
        """The initial local state of ``process``."""
        return cls._initial_interned(str(process))

    def extend(self, observations: Tuple[Observation, ...]) -> "History":
        """The local state obtained by observing ``observations`` in one step.

        O(len(step)): the parent chain is shared, never copied, and the
        extension is interned so re-playing the same step yields the same
        object.
        """
        step = tuple(observations)
        if not step:
            raise ValueError("cannot extend a history with an empty step")
        pool = _interning._POOL
        key = (self, step)
        cached = pool.history_children.get(key)
        if cached is not None:
            return cached
        child = object.__new__(History)
        object.__setattr__(child, "process", self.process)
        object.__setattr__(child, "parent", self)
        object.__setattr__(child, "_last_step", step)
        object.__setattr__(child, "_len", self._len + 1)
        object.__setattr__(
            child, "_hash", hash(("hist", self.process, self._hash, step))
        )
        pool.history_children[key] = child
        return child

    # -- queries -----------------------------------------------------------

    @property
    def steps(self) -> Tuple[Step, ...]:
        """All steps, oldest first (materialised from the chain on demand)."""
        collected: List[Step] = []
        node: Optional[History] = self
        while node is not None and node._last_step is not None:
            collected.append(node._last_step)
            node = node.parent
        collected.reverse()
        return tuple(collected)

    @property
    def is_initial(self) -> bool:
        return self.parent is None

    def __len__(self) -> int:
        """The number of steps taken so far."""
        return self._len

    @property
    def last_step(self) -> Step:
        if self._last_step is None:
            raise ValueError("the initial history has no last step")
        return self._last_step

    def predecessor(self) -> Optional["History"]:
        """The local state one step earlier, or ``None`` for the initial state."""
        return self.parent

    def prefixes(self, include_self: bool = True) -> Iterator["History"]:
        """All earlier local states of this process (shortest first).

        The prefixes of an interned history are exactly its ancestor chain;
        nothing is re-built.
        """
        chain: List[History] = []
        node: Optional[History] = self if include_self else self.parent
        while node is not None:
            chain.append(node)
            node = node.parent
        return iter(reversed(chain))

    def is_prefix_of(self, other: "History") -> bool:
        """Whether this local state occurs (weakly) before ``other`` on the same timeline."""
        if self.process != other.process or self._len > other._len:
            return False
        node = other
        for _ in range(other._len - self._len):
            node = node.parent
        return node == self

    def observations(self) -> Iterator[Observation]:
        """All observations, flattened across steps, oldest first."""
        for step in self.steps:
            yield from step

    def receipts(self) -> Iterator[MessageReceipt]:
        for event in self.observations():
            if isinstance(event, MessageReceipt):
                yield event

    def external_receipts(self) -> Iterator[ExternalReceipt]:
        for event in self.observations():
            if isinstance(event, ExternalReceipt):
                yield event

    def actions(self) -> Iterator[LocalAction]:
        for event in self.observations():
            if isinstance(event, LocalAction):
                yield event

    def has_action(self, name: str) -> bool:
        return any(action.name == name for action in self.actions())

    def has_external(self, tag: str) -> bool:
        return any(ext.tag == tag for ext in self.external_receipts())

    def describe(self) -> str:
        inner = "; ".join(
            ", ".join(event.describe() for event in step) for step in self.steps
        )
        return f"{self.process}[{inner}]"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"History({self.describe()})"


# ---------------------------------------------------------------------------
# Cross-pool canonicalisation
# ---------------------------------------------------------------------------
#
# Values carry no pool marker, so a value interned elsewhere (a pool swap, an
# unpickle into another process) is indistinguishable from a native one until
# an identity check misses.  The structural comparison of such values must not
# re-walk the shared history/message DAG pairwise -- that is exponential on
# full-information payloads, the very pathology interning removes.  Instead,
# equality fallbacks re-intern the foreign value bottom-up into the current
# pool ("canonicalisation"), memoized by id() in the pool, and compare the
# canonical representatives by identity.  Canonicalising a value that is
# already native folds through cache hits and returns the value itself.


def _canonical_step(memo, step: Step) -> Step:
    """Canonicalise one step, resolving embedded messages from the memo."""
    return tuple(
        MessageReceipt(memo[id(observation.message)])
        if isinstance(observation, MessageReceipt)
        else canonicalize_observation(observation)
        for observation in step
    )


_C_CANONICALIZATIONS = _metrics.counter("intern.canonicalizations")


def _canonicalize(value):
    """Iterative post-order canonicalisation of a history/message DAG.

    An explicit work stack (histories and messages interleaved) keeps the
    traversal depth independent of both the chain length and the message
    relay-nesting depth, so arbitrarily deep cross-pool values canonicalise
    without hitting the interpreter recursion limit.
    """
    pool = _interning._POOL
    memo = pool.canonical_memo
    cached = memo.get(id(value))
    if cached is not None:
        return cached
    _C_CANONICALIZATIONS.value += 1
    pins = pool.canonical_pins
    stack = [value]
    while stack:
        item = stack[-1]
        if id(item) in memo:
            stack.pop()
            continue
        if isinstance(item, History):
            pending = []
            if item.parent is not None and id(item.parent) not in memo:
                pending.append(item.parent)
            if item._last_step is not None:
                pending.extend(
                    observation.message
                    for observation in item._last_step
                    if isinstance(observation, MessageReceipt)
                    and id(observation.message) not in memo
                )
            if pending:
                stack.extend(pending)
                continue
            if item.parent is None:
                canonical = History._initial_interned(item.process)
            else:
                canonical = memo[id(item.parent)].extend(
                    _canonical_step(memo, item._last_step)
                )
        else:  # Message
            embedded = item.sender_history
            if id(embedded) not in memo:
                stack.append(embedded)
                continue
            canonical = Message(
                item.sender, item.recipients, memo[id(embedded)], item.payload
            )
        memo[id(item)] = canonical
        pins.append(item)
        stack.pop()
    return memo[id(value)]


def canonicalize_history(history: "History") -> "History":
    """The canonical (current-pool) twin of ``history``; linear, id-memoized."""
    return _canonicalize(history)


def canonicalize_message(message: "Message") -> "Message":
    """The canonical (current-pool) twin of ``message``."""
    return _canonicalize(message)


def canonicalize_observation(observation: "Observation") -> "Observation":
    """The canonical (current-pool) twin of any observation."""
    if isinstance(observation, MessageReceipt):
        return MessageReceipt(_canonicalize(observation.message))
    if isinstance(observation, ExternalReceipt):
        return ExternalReceipt(observation.tag)
    if isinstance(observation, LocalAction):
        return LocalAction(observation.name)
    return observation
