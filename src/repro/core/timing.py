"""Valid timing functions, p-closed sets, and the slow timing (Definitions 9-13).

The constructive half of the paper's necessity proofs works by *re-timing*
runs: one assigns new occurrence times to (a subset of) the basic nodes of a
run and shows the result is again a legal run.  A timing function is *valid*
for a set of nodes when it satisfies every bounds-graph edge constraint inside
the set, and the set must be *precedence-closed* (p-closed) so that no
constraint from outside the set is violated by delaying nodes inside it.

The *slow timing* of a node ``sigma`` (Definition 13) delays every node that
can reach ``sigma`` in the bounds graph as much as the constraints allow, so
that the gap between any such node and ``sigma`` becomes exactly the longest
path weight between them -- which is what makes the longest-path constraint
tight and powers Theorem 2.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Optional, TYPE_CHECKING

from .bounds_graph import basic_bounds_graph, is_p_closed, precedence_set
from .graph import NEG_INF, WeightedGraph
from .nodes import BasicNode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simulation.runs import Run


class TimingError(ValueError):
    """Raised when a timing function violates the constraints it must satisfy."""


def validate_timing(
    graph: WeightedGraph[BasicNode],
    timing: Mapping[BasicNode, int],
    require_nonnegative: bool = True,
) -> None:
    """Check that ``timing`` is a valid timing function for its domain (Def. 10).

    Every edge of the graph whose endpoints are both in the domain must
    satisfy ``T(source) + weight <= T(target)``.
    """
    domain = set(timing)
    if require_nonnegative and any(value < 0 for value in timing.values()):
        raise TimingError("timing functions must assign non-negative times")
    for edge in graph.edges:
        if edge.source in domain and edge.target in domain:
            if timing[edge.source] + edge.weight > timing[edge.target]:
                raise TimingError(
                    f"edge {edge.label} from {edge.source.describe()} to "
                    f"{edge.target.describe()} with weight {edge.weight} is violated by "
                    f"T={timing[edge.source]} -> T={timing[edge.target]}"
                )


def is_valid_timing(
    graph: WeightedGraph[BasicNode], timing: Mapping[BasicNode, int]
) -> bool:
    """Boolean form of :func:`validate_timing`."""
    try:
        validate_timing(graph, timing)
    except TimingError:
        return False
    return True


def run_timing(run: "Run", nodes: Optional[Iterable[BasicNode]] = None) -> Dict[BasicNode, int]:
    """The actual occurrence times of (a subset of) a run's nodes.

    The identity re-timing: always a valid timing function for the run's own
    bounds graph, used as a sanity baseline in tests.
    """
    selected = set(nodes) if nodes is not None else None
    timing: Dict[BasicNode, int] = {}
    for node in run.nodes():
        if selected is None or node in selected:
            timing[node] = run.time_of(node)
    return timing


def longest_distances_to(
    graph: WeightedGraph[BasicNode], target: BasicNode
) -> Dict[BasicNode, int]:
    """Longest-path weight from every node *to* ``target`` (only reachable nodes).

    Computed by one Bellman-Ford pass on the reversed graph.
    """
    reversed_graph: WeightedGraph[BasicNode] = WeightedGraph()
    for node in graph.nodes:
        reversed_graph.add_node(node)
    for edge in graph.edges:
        reversed_graph.add_edge(edge.target, edge.source, edge.weight, edge.label)
    distances = reversed_graph.longest_path_weights(target)
    return {node: int(value) for node, value in distances.items() if value != NEG_INF}


def slow_timing(run: "Run", sigma: BasicNode) -> Dict[BasicNode, int]:
    """The slow timing function of ``sigma`` in the run (Definition 13).

    Defined on ``V_sigma`` (the nodes with a path to ``sigma`` in ``GB(r)``):
    ``T(sigma') = D - d(sigma')`` where ``d(sigma')`` is the longest-path
    weight from ``sigma'`` to ``sigma`` and ``D`` is the largest such weight.
    Under this timing the gap between any node of ``V_sigma`` and ``sigma`` is
    exactly the longest-path constraint, i.e. every constraint is tight.
    """
    graph = basic_bounds_graph(run)
    if sigma not in graph:
        raise TimingError(f"{sigma.describe()} does not appear in the run")
    distances = longest_distances_to(graph, sigma)
    if not distances:
        raise TimingError("no node reaches sigma in the bounds graph")
    maximum = max(distances.values())
    return {node: maximum - weight for node, weight in distances.items()}


def slow_timing_domain(run: "Run", sigma: BasicNode) -> FrozenSet[BasicNode]:
    """``V_sigma``: the domain of the slow timing function."""
    graph = basic_bounds_graph(run)
    return precedence_set(graph, sigma)


def check_p_closed(run: "Run", nodes: Iterable[BasicNode]) -> bool:
    """Whether a node set is p-closed w.r.t. the run's bounds graph (Def. 11)."""
    return is_p_closed(basic_bounds_graph(run), nodes)


def tight_gap(run: "Run", sigma_from: BasicNode, sigma_to: BasicNode) -> Optional[int]:
    """The longest-path weight from ``sigma_from`` to ``sigma_to`` in ``GB(r)``.

    This is the tightest precedence constraint the run's communication pattern
    forces between the two nodes (``None`` when the pattern forces nothing).
    """
    graph = basic_bounds_graph(run)
    return graph.longest_path_weight(sigma_from, sigma_to)
