"""Lamport causality in the bcm model: happens-before, pasts, and recognition.

Because the library always runs full-information protocols (every message
carries its sender's entire history), the happens-before relation and the
causal past of a basic node are determined by the node's local state alone --
the run it came from adds nothing (footnote 6 of the paper).  The functions in
this module therefore work directly on :class:`~repro.core.nodes.BasicNode`
objects, walking the history DAG embedded in their local states.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from ..simulation.messages import MessageReceipt
from ..simulation.network import Process
from .nodes import BasicNode, GeneralNode


def _direct_causes(node: BasicNode) -> Tuple[BasicNode, ...]:
    """The immediate happens-before predecessors of ``node``.

    These are the node's local predecessor (one step earlier on its own
    timeline) and, for every message received in its last step, the basic node
    at which that message was sent.
    """
    causes = []
    previous = node.predecessor()
    if previous is not None:
        causes.append(previous)
    if not node.is_initial:
        for observation in node.history.last_step:
            if isinstance(observation, MessageReceipt):
                message = observation.message
                causes.append(BasicNode(message.sender, message.sender_history))
    return tuple(causes)


def past_nodes(node: BasicNode) -> FrozenSet[BasicNode]:
    """``past(r, sigma)``: every basic node that happens-before ``sigma``.

    The result includes ``sigma`` itself (happens-before is reflexive on a
    process's own timeline in the paper's Definition 2(i)).
    """
    seen = {node}
    stack = [node]
    while stack:
        current = stack.pop()
        for cause in _direct_causes(current):
            if cause not in seen:
                seen.add(cause)
                stack.append(cause)
    return frozenset(seen)


def happens_before(earlier: BasicNode, later: BasicNode, strict: bool = False) -> bool:
    """Whether ``earlier`` happens-before ``later`` (Definition 2).

    With ``strict=True`` the relation excludes equality of the two nodes.
    """
    if strict and earlier == later:
        return False
    if earlier.precedes_locally(later):
        return True
    return earlier in past_nodes(later)


def is_recognized(theta: GeneralNode, sigma: BasicNode) -> bool:
    """Whether ``theta`` is a ``sigma``-recognized node.

    A general node ``<sigma', p'>`` is sigma-recognized iff ``sigma'`` is in
    the past of ``sigma``; under an FFIP, sigma then knows that the node
    appears in the run (the chain messages are guaranteed to be sent and,
    eventually, delivered).
    """
    return happens_before(theta.base, sigma)


def boundary_nodes(sigma: BasicNode) -> Dict[Process, BasicNode]:
    """The boundary node of every process with respect to ``sigma`` (Definition 15).

    The boundary node of process ``i`` is the last ``i``-node in
    ``past(sigma)``.  Processes with no node in the past are absent from the
    returned mapping.
    """
    latest: Dict[Process, BasicNode] = {}
    for node in past_nodes(sigma):
        current = latest.get(node.process)
        if current is None or current.precedes_locally(node):
            latest[node.process] = node
    return latest


def local_delivery_map(
    sigma: BasicNode,
) -> Dict[Tuple[BasicNode, Process], BasicNode]:
    """Deliveries visible in ``sigma``'s past: ``(sender_node, dest) -> receiver_node``.

    For every node in ``past(sigma)`` and every message receipt in its last
    step, record that the message sent at the embedded sender node to this
    node's process was delivered at this node.  This is the information
    ``sigma`` has about which messages have already landed inside its past;
    it drives both general-node resolution from a local state and the
    construction of the extended bounds graph.
    """
    delivered: Dict[Tuple[BasicNode, Process], BasicNode] = {}
    for node in past_nodes(sigma):
        if node.is_initial:
            continue
        for observation in node.history.last_step:
            if isinstance(observation, MessageReceipt):
                sender_node = BasicNode(
                    observation.message.sender, observation.message.sender_history
                )
                delivered[(sender_node, node.process)] = node
    return delivered


def resolve_within_past(
    theta: GeneralNode, sigma: BasicNode
) -> Tuple[BasicNode, int]:
    """Resolve as much of ``theta``'s chain as lies inside ``past(sigma)``.

    Returns ``(last_resolved_node, hops_resolved)``: the basic node reached
    after following the longest prefix of ``theta.path`` whose chain messages
    have all been delivered inside ``past(sigma)``, together with the number
    of hops of that prefix.  If ``hops_resolved == theta.hops`` then
    ``basic(theta, r)`` itself lies in the past of ``sigma`` and equals the
    returned node.

    Raises ``ValueError`` if ``theta`` is not sigma-recognized.
    """
    if not is_recognized(theta, sigma):
        raise ValueError(
            f"general node {theta.describe()} is not recognized at {sigma.describe()}"
        )
    delivered = local_delivery_map(sigma)
    current = theta.base
    hops = 0
    for next_process in theta.path[1:]:
        receiver = delivered.get((current, next_process))
        if receiver is None:
            break
        current = receiver
        hops += 1
    return current, hops


def common_past(nodes: Iterable[BasicNode]) -> FrozenSet[BasicNode]:
    """The intersection of the pasts of several basic nodes."""
    iterator = iter(nodes)
    try:
        first = next(iterator)
    except StopIteration:
        return frozenset()
    result = set(past_nodes(first))
    for node in iterator:
        result &= past_nodes(node)
    return frozenset(result)


def causal_frontier(sigma: BasicNode) -> Dict[Process, Optional[BasicNode]]:
    """Like :func:`boundary_nodes` but listing every process (``None`` if unseen)."""
    boundary = boundary_nodes(sigma)
    return {process: boundary.get(process) for process in {sigma.process, *boundary}}
