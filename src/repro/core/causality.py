"""Lamport causality in the bcm model: happens-before, pasts, and recognition.

Because the library always runs full-information protocols (every message
carries its sender's entire history), the happens-before relation and the
causal past of a basic node are determined by the node's local state alone --
the run it came from adds nothing (footnote 6 of the paper).  The functions in
this module therefore work directly on :class:`~repro.core.nodes.BasicNode`
objects, walking the history DAG embedded in their local states.

Since basic nodes are hash-consed (:mod:`repro.simulation.interning`), every
derived causal quantity is memoized in the intern pool and keyed by identity:

* :func:`_direct_causes` rows are computed once per node;
* causal pasts are **bitsets** over the pool's dense node uids
  (``past_masks``), so the past of a node is one ``|``-fold over its direct
  causes' masks and membership tests are single bit probes;
* the materialised frozenset (:func:`past_nodes`), the per-process boundary
  map (:func:`boundary_nodes`), and the visible-delivery map
  (:func:`local_delivery_map`) are cached per queried node.

Nodes interned in a *different* pool (after a pool swap or a process
boundary) are transparently re-canonicalised into the current pool before
their uid is used, so all entry points stay correct across pools -- only the
caches are per-pool.

When numpy is available, the bitset operations go vectorized over the dense
uid space for large masks: a past bitset unpacks into a boolean array in one
``numpy.unpackbits`` call, membership scans (:func:`mask_members` and the
past-delta scans built on it) become a ``nonzero`` gather instead of
per-member bit twiddling, and :func:`in_past_many` answers a whole batch of
probes against one unpacked view.  Small masks and numpy-free installs take
the pure-Python bit-probe path -- results are identical.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..simulation import interning as _interning
from ..simulation.interning import InternPool
from ..simulation.messages import MessageReceipt
from ..simulation.network import Process
from .nodes import BasicNode, GeneralNode

try:  # numpy is an optional accelerator; every path has a bit-probe fallback.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None

#: Masks with fewer bits than this stay on the pure-Python path: unpacking a
#: tiny bitset into arrays costs more than a handful of bit probes.
_VECTOR_MIN_BITS = 2048


def _mask_uid_array(mask: int):
    """The uids set in ``mask`` as an int64 array (numpy path only).

    One ``to_bytes`` (C-speed on the big int) + ``unpackbits`` + ``nonzero``
    replaces the per-member ``mask & -mask`` peeling loop, which is
    O(members * words) on Python ints.
    """
    data = mask.to_bytes((mask.bit_length() + 7) // 8, "little")
    bits = _np.unpackbits(_np.frombuffer(data, dtype=_np.uint8), bitorder="little")
    return _np.nonzero(bits)[0]


def _canonical_uid(pool: InternPool, node: BasicNode) -> int:
    """The node's dense uid in ``pool``, re-interning nodes from other pools."""
    uid = node.uid
    table = pool.node_by_uid
    if 0 <= uid < len(table) and table[uid] is node:
        return uid
    # The node was interned elsewhere: its (structurally equal) canonical
    # twin in this pool carries the uid the bitsets here are built over.
    return BasicNode(node.process, node.history).uid


def _direct_causes(node: BasicNode) -> Tuple[BasicNode, ...]:
    """The immediate happens-before predecessors of ``node``.

    These are the node's local predecessor (one step earlier on its own
    timeline) and, for every message received in its last step, the basic node
    at which that message was sent.  Memoized per node in the intern pool.
    """
    pool = _interning._POOL
    cached = pool.direct_causes.get(node)
    if cached is not None:
        return cached
    causes = []
    previous = node.predecessor()
    if previous is not None:
        causes.append(previous)
        for observation in node.history.last_step:
            if isinstance(observation, MessageReceipt):
                message = observation.message
                causes.append(BasicNode(message.sender, message.sender_history))
    result = tuple(causes)
    pool.direct_causes[node] = result
    return result


def _past_mask(pool: InternPool, node: BasicNode) -> int:
    """``past(node)`` as a bitset over the pool's dense node uids.

    Iterative post-order over the cause DAG: each node's mask is its own bit
    OR-ed with its direct causes' (already computed) masks, so shared
    sub-pasts are folded once, not re-walked per query.
    """
    masks = pool.past_masks
    cached = masks.get(node)
    if cached is not None:
        return cached
    stack = [node]
    while stack:
        current = stack[-1]
        if current in masks:
            stack.pop()
            continue
        causes = _direct_causes(current)
        pending = [cause for cause in causes if cause not in masks]
        if pending:
            stack.extend(pending)
            continue
        mask = 1 << _canonical_uid(pool, current)
        for cause in causes:
            mask |= masks[cause]
        masks[current] = mask
        stack.pop()
    return masks[node]


def _mask_members(pool: InternPool, mask: int) -> FrozenSet[BasicNode]:
    """Materialise a past bitset back into its set of basic nodes."""
    if _np is not None and mask.bit_length() > _VECTOR_MIN_BITS:
        return frozenset(pool.nodes_for_uids(_mask_uid_array(mask).tolist()))
    table = pool.node_by_uid
    members = []
    remaining = mask
    while remaining:
        lowest = remaining & -remaining
        members.append(table[lowest.bit_length() - 1])
        remaining ^= lowest
    return frozenset(members)


def past_nodes(node: BasicNode) -> FrozenSet[BasicNode]:
    """``past(r, sigma)``: every basic node that happens-before ``sigma``.

    The result includes ``sigma`` itself (happens-before is reflexive on a
    process's own timeline in the paper's Definition 2(i)).  Cached per node;
    repeated calls return the same frozenset object.
    """
    pool = _interning._POOL
    cached = pool.past_sets.get(node)
    if cached is not None:
        return cached
    result = _mask_members(pool, _past_mask(pool, node))
    pool.past_sets[node] = result
    return result


def past_mask(node: BasicNode) -> int:
    """``past(node)`` as a bitset over the current pool's dense node uids.

    The raw-mask form of :func:`past_nodes`: cheap to intersect, union and
    diff.  Incremental consumers (the knowledge sessions) keep the previous
    step's mask and materialise only ``past_mask(new) & ~old`` -- the causal
    delta -- instead of re-walking the whole past.
    """
    return _past_mask(_interning._POOL, node)


def mask_members(mask: int) -> FrozenSet[BasicNode]:
    """Materialise a past bitset (e.g. a delta of two masks) into its nodes."""
    return _mask_members(_interning._POOL, mask)


def in_past(node: BasicNode, sigma: BasicNode) -> bool:
    """``node in past(sigma)``, answered by one bit probe on the cached mask.

    Equivalent to ``node in past_nodes(sigma)`` (and, because pasts contain
    the full local timeline prefix, to ``happens_before(node, sigma)``)
    without materialising the set.
    """
    pool = _interning._POOL
    mask = _past_mask(pool, sigma)
    return bool(mask >> _canonical_uid(pool, node) & 1)


def in_past_many(nodes: Sequence[BasicNode], sigma: BasicNode) -> List[bool]:
    """Batched :func:`in_past`: ``[node in past(sigma) for node in nodes]``.

    Sigma's mask is fetched (or built) once for the whole batch.  For large
    pasts the probes are one vectorized gather over the unpacked boolean view
    of the bitset; small masks and numpy-free installs loop bit probes.  The
    result list is index-aligned with ``nodes``.
    """
    pool = _interning._POOL
    mask = _past_mask(pool, sigma)
    uids = [_canonical_uid(pool, node) for node in nodes]
    if _np is not None and mask.bit_length() > _VECTOR_MIN_BITS and len(uids) > 1:
        data = mask.to_bytes((mask.bit_length() + 7) // 8, "little")
        bits = _np.unpackbits(
            _np.frombuffer(data, dtype=_np.uint8), bitorder="little"
        )
        uid_array = _np.asarray(uids, dtype=_np.int64)
        inside = uid_array < bits.size
        result = _np.zeros(len(uids), dtype=bool)
        result[inside] = bits[uid_array[inside]].astype(bool)
        return result.tolist()
    return [bool(mask >> uid & 1) for uid in uids]


def happens_before(earlier: BasicNode, later: BasicNode, strict: bool = False) -> bool:
    """Whether ``earlier`` happens-before ``later`` (Definition 2).

    With ``strict=True`` the relation excludes equality of the two nodes.
    """
    if strict and earlier == later:
        return False
    if earlier.precedes_locally(later):
        return True
    return in_past(earlier, later)


def is_recognized(theta: GeneralNode, sigma: BasicNode) -> bool:
    """Whether ``theta`` is a ``sigma``-recognized node.

    A general node ``<sigma', p'>`` is sigma-recognized iff ``sigma'`` is in
    the past of ``sigma``; under an FFIP, sigma then knows that the node
    appears in the run (the chain messages are guaranteed to be sent and,
    eventually, delivered).
    """
    return happens_before(theta.base, sigma)


def boundary_nodes(sigma: BasicNode) -> Dict[Process, BasicNode]:
    """The boundary node of every process with respect to ``sigma`` (Definition 15).

    The boundary node of process ``i`` is the last ``i``-node in
    ``past(sigma)``.  Processes with no node in the past are absent from the
    returned mapping.  Cached per sigma (a fresh dict is returned so callers
    may mutate their copy).
    """
    pool = _interning._POOL
    cached = pool.boundaries.get(sigma)
    if cached is None:
        latest: Dict[Process, BasicNode] = {}
        for node in past_nodes(sigma):
            current = latest.get(node.process)
            if current is None or current.precedes_locally(node):
                latest[node.process] = node
        pool.boundaries[sigma] = cached = latest
    return dict(cached)


def local_delivery_map(
    sigma: BasicNode,
) -> Dict[Tuple[BasicNode, Process], BasicNode]:
    """Deliveries visible in ``sigma``'s past: ``(sender_node, dest) -> receiver_node``.

    For every node in ``past(sigma)`` and every message receipt in its last
    step, record that the message sent at the embedded sender node to this
    node's process was delivered at this node.  This is the information
    ``sigma`` has about which messages have already landed inside its past;
    it drives both general-node resolution from a local state and the
    construction of the extended bounds graph.  Cached per sigma (a fresh
    dict is returned so callers may mutate their copy).
    """
    pool = _interning._POOL
    cached = pool.delivery_maps.get(sigma)
    if cached is None:
        delivered: Dict[Tuple[BasicNode, Process], BasicNode] = {}
        for node in past_nodes(sigma):
            if node.is_initial:
                continue
            for observation in node.history.last_step:
                if isinstance(observation, MessageReceipt):
                    sender_node = BasicNode(
                        observation.message.sender, observation.message.sender_history
                    )
                    delivered[(sender_node, node.process)] = node
        pool.delivery_maps[sigma] = cached = delivered
    return dict(cached)


def resolve_within_past(
    theta: GeneralNode, sigma: BasicNode
) -> Tuple[BasicNode, int]:
    """Resolve as much of ``theta``'s chain as lies inside ``past(sigma)``.

    Returns ``(last_resolved_node, hops_resolved)``: the basic node reached
    after following the longest prefix of ``theta.path`` whose chain messages
    have all been delivered inside ``past(sigma)``, together with the number
    of hops of that prefix.  If ``hops_resolved == theta.hops`` then
    ``basic(theta, r)`` itself lies in the past of ``sigma`` and equals the
    returned node.

    Raises ``ValueError`` if ``theta`` is not sigma-recognized.
    """
    if not is_recognized(theta, sigma):
        raise ValueError(
            f"general node {theta.describe()} is not recognized at {sigma.describe()}"
        )
    delivered = local_delivery_map(sigma)
    current = theta.base
    hops = 0
    for next_process in theta.path[1:]:
        receiver = delivered.get((current, next_process))
        if receiver is None:
            break
        current = receiver
        hops += 1
    return current, hops


def common_past(nodes: Iterable[BasicNode]) -> FrozenSet[BasicNode]:
    """The intersection of the pasts of several basic nodes."""
    pool = _interning._POOL
    iterator = iter(nodes)
    try:
        first = next(iterator)
    except StopIteration:
        return frozenset()
    mask = _past_mask(pool, first)
    for node in iterator:
        mask &= _past_mask(pool, node)
    return _mask_members(pool, mask)


def causal_frontier(sigma: BasicNode) -> Dict[Process, Optional[BasicNode]]:
    """Like :func:`boundary_nodes` but listing every process (``None`` if unseen)."""
    boundary = boundary_nodes(sigma)
    return {process: boundary.get(process) for process in {sigma.process, *boundary}}
