"""Basic and general nodes -- the "points on a timeline" of the paper.

Because processes in the bcm model have no clocks, a point on a process's
timeline cannot be named by the real time at which it occurs.  The paper uses
two descriptions instead:

* a **basic node** ``sigma = (i, l)`` is a process name together with a local
  state of that process (Section 2.2); and
* a **general node** ``theta = <sigma, p>`` is a basic node plus a path ``p``
  in the network starting at ``sigma``'s process: it denotes the basic node at
  which the message chain leaving ``sigma`` and travelling along ``p`` is
  received (Definition 3).  The basic node it corresponds to in a specific run
  is ``basic(theta, r)`` (Definition 4); resolution lives in
  :mod:`repro.simulation.runs`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..simulation import interning as _interning
from ..simulation.messages import History
from ..simulation.network import Path, Process, as_path


class NodeError(ValueError):
    """Raised when a node is constructed or used inconsistently."""


class BasicNode:
    """A basic node ``(i, l)``: a process together with one of its local states.

    Basic nodes are hash-consed: because the history already names its
    process, the interned history *is* the identity of the node, and the
    constructor returns the unique node of the current pool.  Each interned
    node also carries a dense per-pool ``uid``, which is what lets causal
    pasts be represented as bitsets (see :mod:`repro.core.causality`).
    """

    __slots__ = ("process", "history", "uid", "_hash")

    def __new__(cls, process: Process, history: History) -> "BasicNode":
        process = str(process)
        if history.process != process:
            raise NodeError(
                f"history belongs to process {history.process!r}, not {process!r}"
            )
        intern = cls is BasicNode
        pool = _interning._POOL
        if intern:
            cached = pool.nodes.get(history)
            if cached is not None:
                return cached
        self = object.__new__(cls)
        object.__setattr__(self, "process", process)
        object.__setattr__(self, "history", history)
        object.__setattr__(self, "_hash", hash(("basic", process, history)))
        if intern:
            object.__setattr__(self, "uid", pool.register_node(self))
            pool.nodes[history] = self
        else:
            object.__setattr__(self, "uid", -1)
        return self

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("BasicNode is immutable")

    def __reduce__(self):
        return (BasicNode, (self.process, self.history))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, BasicNode):
            return NotImplemented
        return (
            self._hash == other._hash
            and self.process == other.process
            and self.history == other.history
        )

    def __hash__(self) -> int:
        return self._hash

    # -- construction helpers ----------------------------------------------

    @classmethod
    def from_history(cls, history: History) -> "BasicNode":
        return cls(history.process, history)

    @classmethod
    def initial(cls, process: Process) -> "BasicNode":
        """The initial node of ``process`` (its time-0 local state)."""
        return cls(process, History.initial(process))

    # -- structure ----------------------------------------------------------

    @property
    def is_initial(self) -> bool:
        return self.history.is_initial

    @property
    def step_count(self) -> int:
        """How many scheduling steps the process has taken at this node."""
        return len(self.history)

    def predecessor(self) -> Optional["BasicNode"]:
        """The node one step earlier on the same timeline (``None`` if initial)."""
        previous = self.history.parent
        if previous is None:
            return None
        return BasicNode(self.process, previous)

    def timeline_prefix(self, include_self: bool = True) -> Tuple["BasicNode", ...]:
        """All nodes of this process up to (and optionally including) this one."""
        return tuple(
            BasicNode(self.process, h) for h in self.history.prefixes(include_self)
        )

    def precedes_locally(self, other: "BasicNode") -> bool:
        """Locality clause of happens-before: same process, weakly earlier state."""
        return self.process == other.process and self.history.is_prefix_of(other.history)

    def describe(self) -> str:
        return f"{self.process}@{self.step_count}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BasicNode({self.describe()})"


class GeneralNode:
    """A general node ``<sigma, p>`` (Definition 3).

    ``base`` is the basic node the message chain leaves from and ``path`` is a
    walk in the network starting at ``base.process``.  When ``path`` is the
    singleton ``(base.process,)`` the general node denotes ``base`` itself.
    """

    __slots__ = ("base", "path", "_hash")

    def __init__(self, base: BasicNode, path: Sequence[Process]):
        p = as_path(path)
        if p[0] != base.process:
            raise NodeError(
                f"general node path must start at {base.process!r}, got {p}"
            )
        object.__setattr__(self, "base", base)
        object.__setattr__(self, "path", p)
        object.__setattr__(self, "_hash", hash(("general", base, p)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("GeneralNode is immutable")

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, GeneralNode):
            return NotImplemented
        return self._hash == other._hash and self.base == other.base and self.path == other.path

    def __hash__(self) -> int:
        return self._hash

    # -- construction helpers ----------------------------------------------

    @classmethod
    def of_basic(cls, node: BasicNode) -> "GeneralNode":
        """The general node denoting the basic node itself (singleton path)."""
        return cls(node, (node.process,))

    def follow(self, suffix: Sequence[Process]) -> "GeneralNode":
        """The paper's ``theta . q``: extend the chain by the walk ``suffix``.

        ``suffix`` must start at this node's (final) process.
        """
        q = as_path(suffix)
        if q[0] != self.process:
            raise NodeError(
                f"suffix must start at {self.process!r} (the node's process), got {q}"
            )
        return GeneralNode(self.base, self.path + q[1:])

    # -- structure ----------------------------------------------------------

    @property
    def process(self) -> Process:
        """The process on whose timeline this node lies (the path's endpoint)."""
        return self.path[-1]

    @property
    def is_basic(self) -> bool:
        """Whether the path is a singleton, i.e. the node *is* its base node."""
        return len(self.path) == 1

    @property
    def hops(self) -> int:
        return len(self.path) - 1

    def prefix(self, hops: int) -> "GeneralNode":
        """The general node after following only the first ``hops`` hops."""
        if not 0 <= hops <= self.hops:
            raise NodeError(f"hops must be in [0, {self.hops}], got {hops}")
        return GeneralNode(self.base, self.path[: hops + 1])

    def remaining_path(self, hops: int) -> Path:
        """The walk still to be travelled after the first ``hops`` hops."""
        if not 0 <= hops <= self.hops:
            raise NodeError(f"hops must be in [0, {self.hops}], got {hops}")
        return self.path[hops:]

    def describe(self) -> str:
        if self.is_basic:
            return self.base.describe()
        return f"<{self.base.describe()}, {'->'.join(self.path)}>"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GeneralNode({self.describe()})"


def general(base: BasicNode, path: Sequence[Process] | None = None) -> GeneralNode:
    """Convenience constructor: ``general(sigma)`` or ``general(sigma, p)``."""
    if path is None:
        return GeneralNode.of_basic(base)
    return GeneralNode(base, path)
