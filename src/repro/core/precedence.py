"""Timed precedence statements ``theta --x--> theta'`` and system support.

Following [Moses & Bloom 1994] and Section 3 of the paper, ``e --x--> e'``
states that ``e`` takes place at least ``x`` time units before ``e'``
(``time(e') >= time(e) + x``).  Negative ``x`` expresses an upper bound on how
much *later* the first event may be: ``te' <= te + y`` is ``e' --(-y)--> e``.

A system (a set of runs) *supports* ``theta1 --x--> theta2`` if in every run
in which either node appears, both appear and the precedence holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, TYPE_CHECKING

from .nodes import BasicNode, GeneralNode, general

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simulation.runs import Run


def _as_general(node: BasicNode | GeneralNode) -> GeneralNode:
    if isinstance(node, GeneralNode):
        return node
    return general(node)


@dataclass(frozen=True)
class TimedPrecedence:
    """The statement ``earlier --margin--> later``.

    ``margin`` may be any integer: positive margins are genuine "at least this
    much earlier" guarantees, zero is plain "not later than", and negative
    margins encode upper bounds (see the module docstring).
    """

    earlier: GeneralNode
    later: GeneralNode
    margin: int

    def __init__(
        self, earlier: BasicNode | GeneralNode, later: BasicNode | GeneralNode, margin: int
    ):
        object.__setattr__(self, "earlier", _as_general(earlier))
        object.__setattr__(self, "later", _as_general(later))
        object.__setattr__(self, "margin", int(margin))

    def holds_in(self, run: "Run") -> bool:
        """``(R, r) |= theta --x--> theta'``: both nodes appear and the gap is >= x."""
        first = run.resolve(self.earlier)
        second = run.resolve(self.later)
        if first is None or second is None:
            return False
        return run.time_of(first) + self.margin <= run.time_of(second)

    def gap_in(self, run: "Run") -> Optional[int]:
        """``time(later) - time(earlier)`` in the run, or ``None`` if unresolved."""
        first = run.resolve(self.earlier)
        second = run.resolve(self.later)
        if first is None or second is None:
            return None
        return run.time_of(second) - run.time_of(first)

    def reversed_bound(self) -> "TimedPrecedence":
        """The equivalent statement with the roles swapped (``te >= te' - x`` form)."""
        return TimedPrecedence(self.later, self.earlier, -self.margin)

    def describe(self) -> str:
        return f"{self.earlier.describe()} --{self.margin}--> {self.later.describe()}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TimedPrecedence({self.describe()})"


def precedes(
    earlier: BasicNode | GeneralNode,
    later: BasicNode | GeneralNode,
    margin: int = 0,
) -> TimedPrecedence:
    """Convenience constructor mirroring the paper's arrow notation."""
    return TimedPrecedence(earlier, later, margin)


def supports(runs: Iterable["Run"], statement: TimedPrecedence) -> bool:
    """Whether a system of runs supports the precedence statement.

    ``R`` supports ``theta1 --x--> theta2`` iff for every run in which one of
    the nodes appears, both appear and the statement holds.
    """
    for run in runs:
        first_appears = run.general_appears(statement.earlier)
        second_appears = run.general_appears(statement.later)
        if not first_appears and not second_appears:
            continue
        if not (first_appears and second_appears):
            return False
        if not statement.holds_in(run):
            return False
    return True


def minimum_gap(runs: Iterable["Run"], statement: TimedPrecedence) -> Optional[int]:
    """The smallest observed gap ``time(later) - time(earlier)`` across runs.

    Runs in which either node is unresolved are skipped.  Returns ``None`` if
    no run resolves both nodes.
    """
    best: Optional[int] = None
    for run in runs:
        gap = statement.gap_in(run)
        if gap is None:
            continue
        if best is None or gap < best:
            best = gap
    return best
