"""Knowledge of timed precedence in the bcm model (Section 4.1, Theorem 4).

A fact is *known* at a basic node ``sigma`` if it holds in every run
indistinguishable from the current one at ``sigma`` (every run in which
``sigma`` appears).  For timed precedence between sigma-recognized nodes,
Theorem 4 characterises knowledge combinatorially: under a flooding
full-information protocol,

    K_sigma(theta1 --x--> theta2)
        iff  there is a sigma-visible zigzag from theta1 to theta2
             of weight at least x,

and the maximal such weight is the longest constraint path between the two
nodes in the extended bounds graph ``GE(r, sigma)``.  This module exposes that
characterisation as an API:

* :func:`max_known_gap` -- the largest ``x`` for which the precedence is
  known (``None`` when no lower bound at all is known);
* :func:`knows_precedence` -- the Boolean query;
* :class:`KnowledgeChecker` -- a per-``sigma`` cache used by protocols that
  issue many queries against the same local state.  Longest paths are served
  by the batched :class:`~repro.core.longest_paths.LongestPathEngine`
  (memoized rows, all-pairs precomputation, incremental growth), so the
  per-query cost after the first query on a source is a lookup; the
  :meth:`KnowledgeChecker.max_known_gaps` /
  :meth:`KnowledgeChecker.knows_statements` batch entry points answer whole
  query sets against one graph snapshot.

The test-suite cross-validates the characterisation against brute-force
enumeration of indistinguishable runs on small networks.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, TYPE_CHECKING

from ..simulation.network import TimedNetwork
from .extended_graph import ExtendedBoundsGraph, ExtendedGraphError
from .nodes import BasicNode, GeneralNode, general
from .precedence import TimedPrecedence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simulation.runs import Run


def indistinguishable(run_a: "Run", run_b: "Run", sigma: BasicNode) -> bool:
    """``r ~sigma r'``: the node's local state appears in both runs."""
    return run_a.appears(sigma) and run_b.appears(sigma)


class KnowledgeChecker:
    """Answers knowledge queries for one observing basic node ``sigma``.

    The underlying extended bounds graph is built once per ``sigma`` and
    reused across queries; adding general nodes only ever grows it.
    """

    def __init__(
        self,
        sigma: BasicNode,
        timed_network: TimedNetwork,
        include_auxiliary: bool = True,
    ):
        self.sigma = sigma
        self.timed_network = timed_network
        self.include_auxiliary = include_auxiliary
        self._graph = ExtendedBoundsGraph(
            sigma, timed_network, include_auxiliary=include_auxiliary
        )

    @property
    def extended_graph(self) -> ExtendedBoundsGraph:
        return self._graph

    def _as_general(self, node: BasicNode | GeneralNode) -> GeneralNode:
        return node if isinstance(node, GeneralNode) else general(node)

    def _require_recognized(self, theta: GeneralNode) -> None:
        # Membership in the extended graph's past set is equivalent to
        # ``is_recognized(theta, self.sigma)``.  The set is the intern pool's
        # cached frozenset of sigma's bitset past, and its members are
        # hash-consed nodes, so this is one O(1) identity-hash probe.
        if theta.base not in self._graph.past:
            raise ExtendedGraphError(
                f"{theta.describe()} is not recognized at {self.sigma.describe()}; "
                "knowledge of its timing is undefined"
            )

    def max_known_gap(
        self, earlier: BasicNode | GeneralNode, later: BasicNode | GeneralNode
    ) -> Optional[int]:
        """The largest ``x`` such that ``K_sigma(earlier --x--> later)`` holds.

        Returns ``None`` when sigma knows no lower bound at all on
        ``time(later) - time(earlier)`` (no constraint path exists), in which
        case no precedence statement about the pair is known.
        """
        theta1 = self._as_general(earlier)
        theta2 = self._as_general(later)
        self._require_recognized(theta1)
        self._require_recognized(theta2)
        return self._graph.longest_weight_between(theta1, theta2)

    def max_known_gaps(
        self,
        pairs: Sequence[Tuple[BasicNode | GeneralNode, BasicNode | GeneralNode]],
    ) -> List[Optional[int]]:
        """Batched :meth:`max_known_gap` over many ``(earlier, later)`` pairs.

        All general nodes are materialised in the extended graph first, then
        every answer comes off the engine's memoized longest-path rows: the
        relaxation cost is paid once per distinct earlier-node, no matter how
        many pairs are queried.  Equivalent, pair for pair, to calling
        :meth:`max_known_gap` in a loop.
        """
        general_pairs = []
        for earlier, later in pairs:
            theta1 = self._as_general(earlier)
            theta2 = self._as_general(later)
            self._require_recognized(theta1)
            self._require_recognized(theta2)
            general_pairs.append((theta1, theta2))
        return self._graph.batch_weights(general_pairs)

    def precompute_all_pairs(self) -> int:
        """Materialise every longest-path row of the extended graph at once.

        Useful before issuing a large, source-diverse batch of queries (an
        all-pairs analysis pass, a benchmark sweep); returns the number of
        rows computed.
        """
        return self._graph.all_pairs()

    def knows(
        self,
        earlier: BasicNode | GeneralNode,
        later: BasicNode | GeneralNode,
        margin: int,
    ) -> bool:
        """``K_sigma(earlier --margin--> later)``."""
        gap = self.max_known_gap(earlier, later)
        return gap is not None and gap >= margin

    def knows_statement(self, statement: TimedPrecedence) -> bool:
        return self.knows(statement.earlier, statement.later, statement.margin)

    def knows_statements(self, statements: Sequence[TimedPrecedence]) -> List[bool]:
        """Batched :meth:`knows_statement` sharing one graph snapshot."""
        gaps = self.max_known_gaps(
            [(statement.earlier, statement.later) for statement in statements]
        )
        return [
            gap is not None and gap >= statement.margin
            for statement, gap in zip(statements, gaps)
        ]

    def known_window(
        self, earlier: BasicNode | GeneralNode, later: BasicNode | GeneralNode
    ) -> Tuple[Optional[int], Optional[int]]:
        """The interval ``[lo, hi]`` sigma knows contains ``time(later) - time(earlier)``.

        ``lo`` is :meth:`max_known_gap(earlier, later)`; ``hi`` is minus the
        maximal known gap in the opposite direction.  Either end may be
        ``None`` (unbounded).
        """
        lower, reverse = self.max_known_gaps([(earlier, later), (later, earlier)])
        upper = None if reverse is None else -reverse
        return lower, upper


def max_known_gap(
    sigma: BasicNode,
    earlier: BasicNode | GeneralNode,
    later: BasicNode | GeneralNode,
    timed_network: TimedNetwork,
) -> Optional[int]:
    """Convenience wrapper around :class:`KnowledgeChecker.max_known_gap`."""
    return KnowledgeChecker(sigma, timed_network).max_known_gap(earlier, later)


def knows_precedence(
    sigma: BasicNode,
    earlier: BasicNode | GeneralNode,
    later: BasicNode | GeneralNode,
    margin: int,
    timed_network: TimedNetwork,
) -> bool:
    """Convenience wrapper around :class:`KnowledgeChecker.knows`."""
    return KnowledgeChecker(sigma, timed_network).knows(earlier, later, margin)


def empirical_min_gap(
    runs: Iterable["Run"],
    sigma: BasicNode,
    earlier: BasicNode | GeneralNode,
    later: BasicNode | GeneralNode,
) -> Optional[int]:
    """The ground-truth counterpart of :func:`max_known_gap`.

    Given an exhaustive collection of candidate runs, restrict to those in
    which ``sigma`` appears (the indistinguishable ones) and return the
    smallest observed ``time(later) - time(earlier)``.  Runs in which either
    node is unresolved within the horizon are skipped -- callers should choose
    horizons long enough for the chains to land.
    """
    theta1 = earlier if isinstance(earlier, GeneralNode) else general(earlier)
    theta2 = later if isinstance(later, GeneralNode) else general(later)
    best: Optional[int] = None
    for run in runs:
        if not run.appears(sigma):
            continue
        first = run.resolve(theta1)
        second = run.resolve(theta2)
        if first is None or second is None:
            continue
        gap = run.time_of(second) - run.time_of(first)
        if best is None or gap < best:
            best = gap
    return best
