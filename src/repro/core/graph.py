"""A small weighted-digraph toolkit used by the bounds-graph machinery.

The bounds graphs of the paper are directed graphs whose edges carry integer
weights and whose *longest* paths encode tight timing constraints.  Because an
edge ``(u, v, w)`` means ``time(v) >= time(u) + w``, longest paths compose
constraints and positive cycles are impossible in any graph describing a real
execution (a positive cycle would force a node to occur strictly after
itself).

Two query paths coexist:

* the plain Bellman–Ford relaxation of the original implementation, kept
  verbatim behind ``reference=True`` as the executable specification that the
  test-suite cross-validates against; and
* the batched :class:`~repro.core.longest_paths.LongestPathEngine` (the
  default), which interns nodes into dense indices, runs a topologically
  ordered DP over the SCC condensation, memoizes per-source rows, and extends
  them incrementally as the graph grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generic, Hashable, Iterable, Iterator, List, Optional, Tuple, TypeVar

NodeT = TypeVar("NodeT", bound=Hashable)

#: Value representing "no path" in longest-path computations.
NEG_INF = float("-inf")


class PositiveCycleError(RuntimeError):
    """Raised when a bounds graph contains a positive-weight cycle.

    A positive cycle means the constraint system is infeasible: some node
    would have to occur strictly later than itself.  A legal run can never
    produce one, so encountering it indicates corrupted input.
    """


@dataclass(frozen=True)
class Edge(Generic[NodeT]):
    """A weighted edge ``source --weight--> target`` with an optional label."""

    source: NodeT
    target: NodeT
    weight: int
    label: str = ""


class WeightedGraph(Generic[NodeT]):
    """A directed multigraph with integer edge weights."""

    def __init__(self) -> None:
        self._adjacency: Dict[NodeT, List[Edge[NodeT]]] = {}
        self._edges: List[Edge[NodeT]] = []
        self._version = 0
        self._engine = None

    # -- construction -------------------------------------------------------------

    def add_node(self, node: NodeT) -> None:
        if node not in self._adjacency:
            self._adjacency[node] = []
            self._version += 1

    def add_edge(self, source: NodeT, target: NodeT, weight: int, label: str = "") -> Edge[NodeT]:
        edge = Edge(source, target, int(weight), label)
        self.add_node(source)
        self.add_node(target)
        self._adjacency[source].append(edge)
        self._edges.append(edge)
        self._version += 1
        return edge

    # -- queries -----------------------------------------------------------------------

    def __contains__(self, node: NodeT) -> bool:
        return node in self._adjacency

    def __len__(self) -> int:
        return len(self._adjacency)

    @property
    def nodes(self) -> Tuple[NodeT, ...]:
        return tuple(self._adjacency)

    @property
    def edges(self) -> Tuple[Edge[NodeT], ...]:
        return tuple(self._edges)

    def out_edges(self, node: NodeT) -> Tuple[Edge[NodeT], ...]:
        return tuple(self._adjacency.get(node, ()))

    def in_edges(self, node: NodeT) -> Tuple[Edge[NodeT], ...]:
        return tuple(edge for edge in self._edges if edge.target == node)

    def successors(self, node: NodeT) -> Iterator[NodeT]:
        for edge in self._adjacency.get(node, ()):
            yield edge.target

    def edge_count(self) -> int:
        return len(self._edges)

    @property
    def version(self) -> int:
        """Monotone counter bumped on every node/edge insertion (cache key)."""
        return self._version

    # -- longest paths -------------------------------------------------------------------

    @property
    def engine(self):
        """The batched :class:`LongestPathEngine` bound to this graph (lazy)."""
        if self._engine is None:
            from .longest_paths import LongestPathEngine

            self._engine = LongestPathEngine(self)
        return self._engine

    def longest_path_weights(self, source: NodeT, reference: bool = False) -> Dict[NodeT, float]:
        """Longest-path weight from ``source`` to every node (``-inf`` if unreachable).

        Raises :class:`PositiveCycleError` if a positive-weight cycle is
        reachable from ``source``.  With ``reference=True`` the original
        Bellman-Ford relaxation runs from scratch (the executable
        specification used by tests); the default delegates to the memoized
        batched engine.
        """
        if not reference:
            return self.engine.row(source)
        if source not in self._adjacency:
            raise KeyError(f"source {source!r} is not a node of the graph")
        distance: Dict[NodeT, float] = {node: NEG_INF for node in self._adjacency}
        distance[source] = 0
        node_count = len(self._adjacency)
        for _ in range(max(node_count - 1, 0)):
            changed = False
            for edge in self._edges:
                base = distance[edge.source]
                if base == NEG_INF:
                    continue
                candidate = base + edge.weight
                if candidate > distance[edge.target]:
                    distance[edge.target] = candidate
                    changed = True
            if not changed:
                break
        for edge in self._edges:
            base = distance[edge.source]
            if base != NEG_INF and base + edge.weight > distance[edge.target]:
                raise PositiveCycleError(
                    "positive-weight cycle reachable from the source; the constraint "
                    "system is infeasible"
                )
        return distance

    def longest_path_weight(
        self, source: NodeT, target: NodeT, reference: bool = False
    ) -> Optional[int]:
        """The weight of the longest path from ``source`` to ``target``.

        Returns ``None`` when the target is unreachable.
        """
        if not reference:
            return self.engine.weight(source, target)
        if target not in self._adjacency:
            raise KeyError(f"target {target!r} is not a node of the graph")
        weight = self.longest_path_weights(source, reference=True).get(target, NEG_INF)
        if weight == NEG_INF:
            return None
        return int(weight)

    def longest_path(
        self, source: NodeT, target: NodeT
    ) -> Optional[Tuple[int, Tuple[Edge[NodeT], ...]]]:
        """The longest path from ``source`` to ``target`` as ``(weight, edges)``.

        Returns ``None`` when the target is unreachable.  Ties are broken
        arbitrarily but deterministically.  Path *reconstruction* stays on the
        naive relaxation (parent tracking is per-query by nature); weight-only
        queries should use :meth:`longest_path_weight`, which is batched.
        """
        if source not in self._adjacency:
            raise KeyError(f"source {source!r} is not a node of the graph")
        if target not in self._adjacency:
            raise KeyError(f"target {target!r} is not a node of the graph")
        distance: Dict[NodeT, float] = {node: NEG_INF for node in self._adjacency}
        parent: Dict[NodeT, Optional[Edge[NodeT]]] = {node: None for node in self._adjacency}
        distance[source] = 0
        node_count = len(self._adjacency)
        for _ in range(max(node_count - 1, 0)):
            changed = False
            for edge in self._edges:
                base = distance[edge.source]
                if base == NEG_INF:
                    continue
                candidate = base + edge.weight
                if candidate > distance[edge.target]:
                    distance[edge.target] = candidate
                    parent[edge.target] = edge
                    changed = True
            if not changed:
                break
        for edge in self._edges:
            base = distance[edge.source]
            if base != NEG_INF and base + edge.weight > distance[edge.target]:
                raise PositiveCycleError(
                    "positive-weight cycle reachable from the source; the constraint "
                    "system is infeasible"
                )
        if distance[target] == NEG_INF:
            return None
        edges: List[Edge[NodeT]] = []
        current = target
        while current != source:
            edge = parent[current]
            if edge is None:
                break
            edges.append(edge)
            current = edge.source
        edges.reverse()
        return int(distance[target]), tuple(edges)

    def has_positive_cycle(self, reference: bool = False) -> bool:
        """Whether any positive-weight cycle exists anywhere in the graph."""
        if not reference:
            return self.engine.has_positive_cycle()
        distance: Dict[NodeT, float] = {node: 0 for node in self._adjacency}
        node_count = len(self._adjacency)
        for _ in range(max(node_count - 1, 0)):
            changed = False
            for edge in self._edges:
                candidate = distance[edge.source] + edge.weight
                if candidate > distance[edge.target]:
                    distance[edge.target] = candidate
                    changed = True
            if not changed:
                return False
        return any(
            distance[edge.source] + edge.weight > distance[edge.target] for edge in self._edges
        )

    def reachable_to(self, target: NodeT) -> frozenset:
        """Nodes from which ``target`` is reachable (including ``target`` itself)."""
        if target not in self._adjacency:
            raise KeyError(f"target {target!r} is not a node of the graph")
        predecessors: Dict[NodeT, List[NodeT]] = {node: [] for node in self._adjacency}
        for edge in self._edges:
            predecessors[edge.target].append(edge.source)
        seen = {target}
        stack = [target]
        while stack:
            current = stack.pop()
            for pred in predecessors[current]:
                if pred not in seen:
                    seen.add(pred)
                    stack.append(pred)
        return frozenset(seen)

    def reachable_from(self, source: NodeT) -> frozenset:
        """Nodes reachable from ``source`` (including ``source`` itself)."""
        if source not in self._adjacency:
            raise KeyError(f"source {source!r} is not a node of the graph")
        seen = {source}
        stack = [source]
        while stack:
            current = stack.pop()
            for edge in self._adjacency[current]:
                if edge.target not in seen:
                    seen.add(edge.target)
                    stack.append(edge.target)
        return frozenset(seen)

    def induced_subgraph(self, nodes: Iterable[NodeT]) -> "WeightedGraph[NodeT]":
        """The subgraph induced by ``nodes`` (edges with both endpoints inside)."""
        keep = set(nodes)
        result: WeightedGraph[NodeT] = WeightedGraph()
        for node in keep:
            if node in self._adjacency:
                result.add_node(node)
        for edge in self._edges:
            if edge.source in keep and edge.target in keep:
                result.add_edge(edge.source, edge.target, edge.weight, edge.label)
        return result
