"""A small weighted-digraph toolkit used by the bounds-graph machinery.

The bounds graphs of the paper are directed graphs whose edges carry integer
weights and whose *longest* paths encode tight timing constraints.  Because an
edge ``(u, v, w)`` means ``time(v) >= time(u) + w``, longest paths compose
constraints and positive cycles are impossible in any graph describing a real
execution (a positive cycle would force a node to occur strictly after
itself).

The graphs are small (hundreds of nodes), so a plain Bellman–Ford style
relaxation is used; it doubles as the positive-cycle detector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generic, Hashable, Iterable, Iterator, List, Optional, Tuple, TypeVar

NodeT = TypeVar("NodeT", bound=Hashable)

#: Value representing "no path" in longest-path computations.
NEG_INF = float("-inf")


class PositiveCycleError(RuntimeError):
    """Raised when a bounds graph contains a positive-weight cycle.

    A positive cycle means the constraint system is infeasible: some node
    would have to occur strictly later than itself.  A legal run can never
    produce one, so encountering it indicates corrupted input.
    """


@dataclass(frozen=True)
class Edge(Generic[NodeT]):
    """A weighted edge ``source --weight--> target`` with an optional label."""

    source: NodeT
    target: NodeT
    weight: int
    label: str = ""


class WeightedGraph(Generic[NodeT]):
    """A directed multigraph with integer edge weights."""

    def __init__(self) -> None:
        self._adjacency: Dict[NodeT, List[Edge[NodeT]]] = {}
        self._edges: List[Edge[NodeT]] = []

    # -- construction -------------------------------------------------------------

    def add_node(self, node: NodeT) -> None:
        self._adjacency.setdefault(node, [])

    def add_edge(self, source: NodeT, target: NodeT, weight: int, label: str = "") -> Edge[NodeT]:
        edge = Edge(source, target, int(weight), label)
        self.add_node(source)
        self.add_node(target)
        self._adjacency[source].append(edge)
        self._edges.append(edge)
        return edge

    # -- queries -----------------------------------------------------------------------

    def __contains__(self, node: NodeT) -> bool:
        return node in self._adjacency

    def __len__(self) -> int:
        return len(self._adjacency)

    @property
    def nodes(self) -> Tuple[NodeT, ...]:
        return tuple(self._adjacency)

    @property
    def edges(self) -> Tuple[Edge[NodeT], ...]:
        return tuple(self._edges)

    def out_edges(self, node: NodeT) -> Tuple[Edge[NodeT], ...]:
        return tuple(self._adjacency.get(node, ()))

    def in_edges(self, node: NodeT) -> Tuple[Edge[NodeT], ...]:
        return tuple(edge for edge in self._edges if edge.target == node)

    def successors(self, node: NodeT) -> Iterator[NodeT]:
        for edge in self._adjacency.get(node, ()):
            yield edge.target

    def edge_count(self) -> int:
        return len(self._edges)

    # -- longest paths -------------------------------------------------------------------

    def longest_path_weights(self, source: NodeT) -> Dict[NodeT, float]:
        """Longest-path weight from ``source`` to every node (``-inf`` if unreachable).

        Raises :class:`PositiveCycleError` if a positive-weight cycle is
        reachable from ``source``.
        """
        if source not in self._adjacency:
            raise KeyError(f"source {source!r} is not a node of the graph")
        distance: Dict[NodeT, float] = {node: NEG_INF for node in self._adjacency}
        distance[source] = 0
        node_count = len(self._adjacency)
        for _ in range(max(node_count - 1, 0)):
            changed = False
            for edge in self._edges:
                base = distance[edge.source]
                if base == NEG_INF:
                    continue
                candidate = base + edge.weight
                if candidate > distance[edge.target]:
                    distance[edge.target] = candidate
                    changed = True
            if not changed:
                break
        for edge in self._edges:
            base = distance[edge.source]
            if base != NEG_INF and base + edge.weight > distance[edge.target]:
                raise PositiveCycleError(
                    "positive-weight cycle reachable from the source; the constraint "
                    "system is infeasible"
                )
        return distance

    def longest_path_weight(self, source: NodeT, target: NodeT) -> Optional[int]:
        """The weight of the longest path from ``source`` to ``target``.

        Returns ``None`` when the target is unreachable.
        """
        if target not in self._adjacency:
            raise KeyError(f"target {target!r} is not a node of the graph")
        weight = self.longest_path_weights(source).get(target, NEG_INF)
        if weight == NEG_INF:
            return None
        return int(weight)

    def longest_path(self, source: NodeT, target: NodeT) -> Optional[Tuple[int, Tuple[Edge[NodeT], ...]]]:
        """The longest path from ``source`` to ``target`` as ``(weight, edges)``.

        Returns ``None`` when the target is unreachable.  Ties are broken
        arbitrarily but deterministically.
        """
        if source not in self._adjacency:
            raise KeyError(f"source {source!r} is not a node of the graph")
        if target not in self._adjacency:
            raise KeyError(f"target {target!r} is not a node of the graph")
        distance: Dict[NodeT, float] = {node: NEG_INF for node in self._adjacency}
        parent: Dict[NodeT, Optional[Edge[NodeT]]] = {node: None for node in self._adjacency}
        distance[source] = 0
        node_count = len(self._adjacency)
        for _ in range(max(node_count - 1, 0)):
            changed = False
            for edge in self._edges:
                base = distance[edge.source]
                if base == NEG_INF:
                    continue
                candidate = base + edge.weight
                if candidate > distance[edge.target]:
                    distance[edge.target] = candidate
                    parent[edge.target] = edge
                    changed = True
            if not changed:
                break
        for edge in self._edges:
            base = distance[edge.source]
            if base != NEG_INF and base + edge.weight > distance[edge.target]:
                raise PositiveCycleError(
                    "positive-weight cycle reachable from the source; the constraint "
                    "system is infeasible"
                )
        if distance[target] == NEG_INF:
            return None
        edges: List[Edge[NodeT]] = []
        current = target
        while current != source:
            edge = parent[current]
            if edge is None:
                break
            edges.append(edge)
            current = edge.source
        edges.reverse()
        return int(distance[target]), tuple(edges)

    def has_positive_cycle(self) -> bool:
        """Whether any positive-weight cycle exists anywhere in the graph."""
        distance: Dict[NodeT, float] = {node: 0 for node in self._adjacency}
        node_count = len(self._adjacency)
        for _ in range(max(node_count - 1, 0)):
            changed = False
            for edge in self._edges:
                candidate = distance[edge.source] + edge.weight
                if candidate > distance[edge.target]:
                    distance[edge.target] = candidate
                    changed = True
            if not changed:
                return False
        return any(
            distance[edge.source] + edge.weight > distance[edge.target] for edge in self._edges
        )

    def reachable_to(self, target: NodeT) -> frozenset:
        """Nodes from which ``target`` is reachable (including ``target`` itself)."""
        if target not in self._adjacency:
            raise KeyError(f"target {target!r} is not a node of the graph")
        predecessors: Dict[NodeT, List[NodeT]] = {node: [] for node in self._adjacency}
        for edge in self._edges:
            predecessors[edge.target].append(edge.source)
        seen = {target}
        stack = [target]
        while stack:
            current = stack.pop()
            for pred in predecessors[current]:
                if pred not in seen:
                    seen.add(pred)
                    stack.append(pred)
        return frozenset(seen)

    def reachable_from(self, source: NodeT) -> frozenset:
        """Nodes reachable from ``source`` (including ``source`` itself)."""
        if source not in self._adjacency:
            raise KeyError(f"source {source!r} is not a node of the graph")
        seen = {source}
        stack = [source]
        while stack:
            current = stack.pop()
            for edge in self._adjacency[current]:
                if edge.target not in seen:
                    seen.add(edge.target)
                    stack.append(edge.target)
        return frozenset(seen)

    def induced_subgraph(self, nodes: Iterable[NodeT]) -> "WeightedGraph[NodeT]":
        """The subgraph induced by ``nodes`` (edges with both endpoints inside)."""
        keep = set(nodes)
        result: WeightedGraph[NodeT] = WeightedGraph()
        for node in keep:
            if node in self._adjacency:
                result.add_node(node)
        for edge in self._edges:
            if edge.source in keep and edge.target in keep:
                result.add_edge(edge.source, edge.target, edge.weight, edge.label)
        return result
