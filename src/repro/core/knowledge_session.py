"""Incremental knowledge sessions: carry ``GE(r, sigma)`` along a timeline.

A :class:`~repro.core.knowledge.KnowledgeChecker` answers any number of
queries against *one* local state cheaply, but a protocol does not sit at one
local state: Protocol 2 re-evaluates its knowledge guard at every step of its
process's timeline, and ``past(r, sigma_{t+1})`` is a strict superset of
``past(r, sigma_t)``.  Rebuilding the extended bounds graph from scratch at
every step therefore re-pays O(past) graph construction plus a fresh engine
for work that is almost entirely shared with the previous step.

:class:`KnowledgeSession` keeps that shared work alive across steps:

* **Causal-past deltas.**  Pasts are pool-memoized bitsets
  (:func:`~repro.core.causality.past_mask`), so the step delta is one
  ``new & ~old`` and only the delta's nodes are ever materialised.
* **A monotone core graph.**  Basic past nodes with their ``succ``/``lower``/
  ``upper`` edges, plus chain nodes with their chain-bound edges, only ever
  *grow* -- they are appended to one persistent
  :class:`~repro.core.graph.WeightedGraph` whose
  :class:`~repro.core.longest_paths.LongestPathEngine` keeps its index maps
  and extends its memoized rows incrementally.
* **A volatile auxiliary overlay.**  The ``psi`` layer is the only
  retractable part of the extended graph: an ``E''`` edge must be dropped
  the moment its message is seen to arrive, a chain anchor the moment its
  hop resolves, and ``E'`` re-anchors to the advancing boundary.  The
  session maintains boundary/delivered/undelivered maps with O(delta) work
  per step and reinstalls the (frontier-sized) auxiliary edge set as the
  engine's overlay (:meth:`LongestPathEngine.set_overlay`); queries relax a
  memoized core row against the overlay instead of recomputing anything.
* **Chain re-anchoring.**  Chain nodes persist in the core (their bound
  edges stay valid once their delivery is seen), but when a chain prefix
  resolves to an actual basic node the first unresolved hop is *bridged* to
  the resolution point, so session answers coincide with a fresh checker's
  at every step -- the property-test suite verifies exactly that, psi
  re-anchoring cases included.

Sessions are self-healing: advancing to a node whose past does not contain
the previous observer (a new run, a different process) or under a different
intern pool resets the session to a cold build, so long-lived protocol
objects can hold one session without lifecycle bookkeeping.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple, TYPE_CHECKING

from ..obs import metrics as _metrics
from ..simulation import interning as _interning
from ..simulation.messages import ExternalReceipt, GO_TRIGGER
from ..simulation.network import Process, TimedNetwork
from .bounds_graph import append_past_nodes, ordered_past_delta
from .causality import in_past, mask_members, past_mask
from .extended_graph import (
    AuxiliaryNode,
    CHAIN_LOWER_EDGE,
    CHAIN_UPPER_EDGE,
    ChainNode,
    ExtendedGraphError,
    GraphKey,
    auxiliary_layer_edges,
    flooding_edges,
    resolve_chain_prefix,
)
from .graph import WeightedGraph
from .nodes import BasicNode, GeneralNode, general
from .precedence import TimedPrecedence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .longest_paths import EngineStats

__all__ = ["KnowledgeSession"]

# Process-wide session counters (every session feeds the same set).
_C_ADVANCES = _metrics.counter("session.advances")
_C_CHUNK_ADVANCES = _metrics.counter("session.chunk_advances")
_C_RESETS = _metrics.counter("session.resets")
_C_NODES_APPENDED = _metrics.counter("session.nodes_appended")
_C_PSI_REINSTALLS = _metrics.counter("session.psi_reinstalls")


class KnowledgeSession:
    """Knowledge queries for an observer advancing along a timeline.

    Query-for-query equivalent to building a fresh
    :class:`~repro.core.knowledge.KnowledgeChecker` at every observed node,
    but each :meth:`advance` does O(delta) graph work instead of O(past).

    Usage::

        session = KnowledgeSession(timed_network)
        for sigma in observer_timeline:
            session.advance(sigma)
            if session.knows(theta_a, sigma, margin):
                ...
    """

    def __init__(self, timed_network: TimedNetwork, include_auxiliary: bool = True):
        self.timed_network = timed_network
        self.include_auxiliary = include_auxiliary
        self.advances = 0
        self.chunk_advances = 0
        self.resets = 0
        self.nodes_appended = 0
        self._cold_start()

    # -- lifecycle ---------------------------------------------------------------

    def _cold_start(self) -> None:
        self._pool = _interning._POOL
        self._sigma: Optional[BasicNode] = None
        self._mask = 0
        self._graph: WeightedGraph[GraphKey] = WeightedGraph()
        self._boundary: Dict[Process, BasicNode] = {}
        self._delivered: Dict[Tuple[BasicNode, Process], BasicNode] = {}
        self._undelivered: Set[Tuple[BasicNode, Process]] = set()
        # Chain node -> the vertex its bound edges are currently linked from
        # (a basic node once the preceding hop resolved, an earlier chain
        # node otherwise).
        self._chain_links: Dict[ChainNode, GraphKey] = {}
        self._overlay_dirty = True
        self._go_nodes: Dict[Tuple[Process, str], Tuple[Optional[BasicNode], int]] = {}
        # The E''' tail never changes for a fixed network; build it once.
        self._flooding_edges: List[Tuple[GraphKey, GraphKey, int]] = []
        if self.include_auxiliary:
            self._flooding_edges = [
                (source, target, weight)
                for source, target, weight, _ in flooding_edges(self.timed_network)
            ]

    @property
    def sigma(self) -> Optional[BasicNode]:
        """The current observer node (``None`` before the first advance)."""
        return self._sigma

    @property
    def engine_stats(self) -> "EngineStats":
        return self._graph.engine.stats

    def _needs_reset(self, sigma: BasicNode) -> bool:
        if _interning._POOL is not self._pool:
            return True  # nodes/bitsets of the old pool are no longer canonical
        if self._sigma is None:
            return False
        if sigma is self._sigma:
            return False
        return not in_past(self._sigma, sigma)

    # -- advancing ---------------------------------------------------------------

    def advance(self, sigma: BasicNode) -> "KnowledgeSession":
        """Move the observer to ``sigma``, absorbing the causal-past delta.

        Monotone moves (``previous sigma in past(sigma)``, the timeline case)
        append only the delta; anything else -- a different run, a pool swap,
        an unrelated observer -- transparently resets to a cold build.
        Returns ``self`` so ``session.advance(sigma).knows(...)`` reads well.
        """
        if self._needs_reset(sigma):
            self.resets += 1
            _C_RESETS.value += 1
            self._cold_start()
        if sigma is self._sigma:
            return self
        new_mask = past_mask(sigma)
        delta = new_mask & ~self._mask
        ordered = ordered_past_delta(mask_members(delta)) if delta else []

        # Pass 1: the monotone bookkeeping every new node contributes --
        # boundary advance and freshly sent (so far undelivered) messages.
        net = self.timed_network
        for node in ordered:
            current = self._boundary.get(node.process)
            if current is None or current.step_count < node.step_count:
                self._boundary[node.process] = node
            if not node.is_initial:
                for destination in net.out_neighbors(node.process):
                    self._undelivered.add((node, destination))

        # Pass 2: grow the core graph; its returned deliveries retract the
        # matching E'' pairs (the "seen to arrive" re-anchoring).
        for sender_node, destination, receiver_node in append_past_nodes(
            self._graph, ordered, net
        ):
            key = (sender_node, destination)
            self._delivered[key] = receiver_node
            self._undelivered.discard(key)

        self._sigma = sigma
        self._mask = new_mask
        self._overlay_dirty = True
        self.advances += 1
        self.nodes_appended += len(ordered)
        _C_ADVANCES.value += 1
        _C_NODES_APPENDED.value += len(ordered)
        return self

    def advance_many(self, sigmas: Sequence[BasicNode]) -> "KnowledgeSession":
        """Advance through a whole chunk of timeline nodes in one absorption.

        Equivalent in final state to ``for sigma in sigmas: advance(sigma)``,
        but the intermediate nodes pay no per-step bookkeeping at all: the
        chunk contributes *one* causal-past delta (``past(last) & ~previous``
        subsumes every step in between on a timeline), one ordered
        materialisation, one core-graph append and -- because the auxiliary
        overlay installs lazily, on the first query -- at most one engine
        overlay install.  This is the "one engine pass per chunk" contract
        the coordination replays and the sweep analysis passes batch against.

        Queries after the call are answered at the chunk's *last* node; a
        consumer that must observe an intermediate node ends a chunk at it.
        An empty chunk is a no-op.
        """
        last: Optional[BasicNode] = None
        for sigma in sigmas:
            last = sigma
        if last is None:
            return self
        self.chunk_advances += 1
        _C_CHUNK_ADVANCES.value += 1
        return self.advance(last)

    # -- the auxiliary overlay -----------------------------------------------------

    def _chain_is_unresolved(self, chain_node: ChainNode) -> bool:
        """Whether the chain hop this vertex stands for is still beyond the view."""
        prefix = chain_node.prefix
        _, hops_resolved = resolve_chain_prefix(prefix, self._delivered)
        return hops_resolved < prefix.hops

    def _refresh_overlay(self) -> None:
        if not self._overlay_dirty:
            return
        edges: List[Tuple[GraphKey, GraphKey, int]] = []
        if self.include_auxiliary:
            # Iteration order of the undelivered set varies, but overlay edge
            # order never affects a fixpoint weight, so no sort is needed.
            for source, target, weight, _ in auxiliary_layer_edges(
                self._boundary,
                self._undelivered,
                self.timed_network,
                include_flooding=False,
            ):
                edges.append((source, target, weight))
            edges.extend(self._flooding_edges)
            # Chain anchors: every still-unresolved chain hop necessarily
            # happens beyond the view, i.e. at or after its process's psi.
            for chain_node in self._chain_links:
                if self._chain_is_unresolved(chain_node):
                    edges.append((AuxiliaryNode(chain_node.process), chain_node, 0))
        self._graph.engine.set_overlay(edges)
        self._overlay_dirty = False
        _C_PSI_REINSTALLS.value += 1

    # -- general nodes ----------------------------------------------------------------

    def _require_advanced(self) -> BasicNode:
        if self._sigma is None:
            raise ExtendedGraphError(
                "the session has not observed any node yet; call advance(sigma) first"
            )
        return self._sigma

    def _materialize(self, theta: GeneralNode) -> GraphKey:
        """Ensure ``theta`` is represented in the core graph; return its vertex.

        The incremental counterpart of
        :meth:`ExtendedBoundsGraph.add_general_node`: chain nodes are shared
        by prefix across steps, and when the resolution frontier has advanced
        past a chain node's previous link the first unresolved hop is
        *bridged* to the actual resolution point, so the vertex keeps exactly
        the in/out bound edges a fresh graph would give it.  Stale chain
        edges left behind by earlier steps remain valid constraints (their
        deliveries happened within the same bounds), so they never change an
        answer -- only retractable psi edges live in the overlay.
        """
        sigma = self._require_advanced()
        if not in_past(theta.base, sigma):
            raise ExtendedGraphError(
                f"{theta.describe()} is not recognized at {sigma.describe()}"
            )
        resolved, hops_resolved = resolve_chain_prefix(theta, self._delivered)
        if hops_resolved == theta.hops:
            return resolved

        if resolved.is_initial:
            raise ExtendedGraphError(
                f"the chain of {theta.describe()} leaves the initial node "
                f"{resolved.describe()}, which never sends messages; the general node "
                "does not appear in any run"
            )

        net = self.timed_network
        previous_key: GraphKey = resolved
        previous_process = resolved.process
        for hop_index in range(hops_resolved + 1, theta.hops + 1):
            prefix = theta.prefix(hop_index)
            hop_process = prefix.process
            key = ChainNode(prefix)
            linked = self._chain_links.get(key)
            if linked is None or (
                hop_index == hops_resolved + 1 and linked is not previous_key
            ):
                lower = net.L(previous_process, hop_process)
                upper = net.U(previous_process, hop_process)
                self._graph.add_edge(previous_key, key, lower, CHAIN_LOWER_EDGE)
                self._graph.add_edge(key, previous_key, -upper, CHAIN_UPPER_EDGE)
                self._chain_links[key] = previous_key
                self._overlay_dirty = True
            previous_key = key
            previous_process = hop_process
        return previous_key

    def _as_general(self, node: BasicNode | GeneralNode) -> GeneralNode:
        return node if isinstance(node, GeneralNode) else general(node)

    # -- queries (KnowledgeChecker-parity API) --------------------------------------

    def max_known_gap(
        self, earlier: BasicNode | GeneralNode, later: BasicNode | GeneralNode
    ) -> Optional[int]:
        """The largest ``x`` such that ``K_sigma(earlier --x--> later)`` holds."""
        return self.max_known_gaps([(earlier, later)])[0]

    def max_known_gaps(
        self,
        pairs: Sequence[Tuple[BasicNode | GeneralNode, BasicNode | GeneralNode]],
    ) -> List[Optional[int]]:
        """Batched :meth:`max_known_gap`, one overlay snapshot for the batch."""
        keys: List[GraphKey] = []
        for earlier, later in pairs:
            keys.append(self._materialize(self._as_general(earlier)))
            keys.append(self._materialize(self._as_general(later)))
        self._refresh_overlay()
        engine = self._graph.engine
        return [
            engine.overlay_weight(keys[index], keys[index + 1])
            for index in range(0, len(keys), 2)
        ]

    def knows(
        self,
        earlier: BasicNode | GeneralNode,
        later: BasicNode | GeneralNode,
        margin: int,
    ) -> bool:
        """``K_sigma(earlier --margin--> later)`` at the current observer node."""
        gap = self.max_known_gap(earlier, later)
        return gap is not None and gap >= margin

    def knows_statement(self, statement: TimedPrecedence) -> bool:
        return self.knows(statement.earlier, statement.later, statement.margin)

    def knows_statements(self, statements: Sequence[TimedPrecedence]) -> List[bool]:
        gaps = self.max_known_gaps(
            [(statement.earlier, statement.later) for statement in statements]
        )
        return [
            gap is not None and gap >= statement.margin
            for statement, gap in zip(statements, gaps)
        ]

    def known_window(
        self, earlier: BasicNode | GeneralNode, later: BasicNode | GeneralNode
    ) -> Tuple[Optional[int], Optional[int]]:
        """The interval sigma knows contains ``time(later) - time(earlier)``."""
        lower, reverse = self.max_known_gaps([(earlier, later), (later, earlier)])
        upper = None if reverse is None else -reverse
        return lower, upper

    # -- memoized go-node lookup ------------------------------------------------------

    def find_go_node(
        self, go_sender: Process, go_trigger: str = GO_TRIGGER
    ) -> Optional[BasicNode]:
        """The node at which ``go_sender`` received the trigger, if visible.

        Memoized per ``(go_sender, go_trigger)``: once found, subsequent
        calls are a single ``in_past`` bit probe; while unfound, each call
        scans only past nodes the previous call has not seen (the bitset
        delta), never the whole past again.  Ties (several trigger receipts)
        resolve to the earliest node on the sender's timeline.
        """
        sigma = self._require_advanced()
        key = (go_sender, go_trigger)
        found, scanned_mask = self._go_nodes.get(key, (None, 0))
        if found is not None:
            if in_past(found, sigma):
                return found
            scanned_mask = 0  # stale cache (cannot happen on monotone advances)
        best: Optional[BasicNode] = None
        for node in mask_members(self._mask & ~scanned_mask):
            if node.process != go_sender or node.is_initial:
                continue
            if any(
                isinstance(obs, ExternalReceipt) and obs.tag == go_trigger
                for obs in node.history.last_step
            ):
                if best is None or node.step_count < best.step_count:
                    best = node
        self._go_nodes[key] = (best, self._mask)
        return best

    # -- introspection -----------------------------------------------------------------

    def describe(self) -> str:
        sigma = "-" if self._sigma is None else self._sigma.describe()
        return (
            f"KnowledgeSession(sigma={sigma}, advances={self.advances}, "
            f"resets={self.resets}, nodes={self.nodes_appended}, "
            f"core_edges={self._graph.edge_count()}, "
            f"undelivered={len(self._undelivered)}, chains={len(self._chain_links)})"
        )
