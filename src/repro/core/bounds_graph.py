"""Basic bounds graphs (Definition 8) and local bounds graphs (Definition 14).

The basic bounds graph ``GB(r)`` of a run has the run's basic nodes as
vertices and three kinds of weighted edges, each expressing a constraint
``time(target) >= time(source) + weight``:

* ``succ`` edges of weight 1 between consecutive nodes of the same process
  (distinct local states are at least one time unit apart);
* ``lower`` edges of weight ``L_ij`` from the node at which a message is sent
  to the node at which it is received; and
* ``upper`` edges of weight ``-U_ij`` in the opposite direction.

Longest paths in ``GB(r)`` are exactly the timed-precedence constraints that
the communication pattern of the run forces (Lemma 1), and each path induces a
zigzag pattern of the same weight (Lemma 2 / Lemma 5; see
:mod:`repro.core.path_to_zigzag`).

The *local* bounds graph ``GB(r, sigma)`` is the subgraph induced by
``past(r, sigma)``.  Under a full-information protocol it can be computed from
``sigma``'s local state alone, which is how a process reasons about timing;
:func:`local_bounds_graph` does exactly that.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, TYPE_CHECKING

from ..simulation.messages import MessageReceipt
from ..simulation.network import Process, TimedNetwork
from .causality import past_nodes
from .graph import WeightedGraph
from .nodes import BasicNode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simulation.runs import Run

#: Edge labels used in bounds graphs.
SUCCESSOR_EDGE = "succ"
LOWER_EDGE = "lower"
UPPER_EDGE = "upper"

#: A delivery visible in a local past: ``(sender_node, destination, receiver_node)``.
VisibleDelivery = Tuple[BasicNode, Process, BasicNode]


def basic_bounds_graph(run: "Run") -> WeightedGraph[BasicNode]:
    """Build ``GB(r)`` for a run (Definition 8)."""
    graph: WeightedGraph[BasicNode] = WeightedGraph()
    net = run.timed_network
    for process in run.processes:
        timeline = run.timelines[process]
        for _, node in timeline:
            graph.add_node(node)
        for (_, previous), (_, current) in zip(timeline, timeline[1:]):
            graph.add_edge(previous, current, 1, SUCCESSOR_EDGE)
    for record in run.deliveries:
        lower = net.L(record.sender, record.destination)
        upper = net.U(record.sender, record.destination)
        graph.add_edge(record.sender_node, record.receiver_node, lower, LOWER_EDGE)
        graph.add_edge(record.receiver_node, record.sender_node, -upper, UPPER_EDGE)
    return graph


def append_past_nodes(
    graph: WeightedGraph[BasicNode],
    nodes: Sequence[BasicNode],
    timed_network: TimedNetwork,
) -> List[VisibleDelivery]:
    """Append past nodes (plus their edges) to a growing local bounds graph.

    ``nodes`` is a batch of basic nodes being added to the past the graph
    describes.  The batch must be *past-delta shaped*: together with the
    nodes already in the graph it is predecessor-closed (causal pasts always
    are), so every node's ``succ`` edge target and every visible delivery's
    sender node is present once the batch is in.  Each node contributes

    * its ``succ`` edge from its timeline predecessor (weight 1), and
    * one ``lower``/``upper`` edge pair per message receipt in its last step
      (the deliveries of ``local_delivery_map`` restricted to this batch).

    Returns the visible deliveries the batch contributed, which is exactly
    the bookkeeping an incremental caller
    (:class:`~repro.core.knowledge_session.KnowledgeSession`) needs to
    maintain its delivered/undelivered maps.  Called once with the full past
    it builds ``GB(r, sigma)`` from scratch; called repeatedly with bitset
    past deltas it *extends* the same graph in O(delta).
    """
    for node in nodes:
        graph.add_node(node)
        previous = node.predecessor()
        if previous is not None:
            graph.add_edge(previous, node, 1, SUCCESSOR_EDGE)
    deliveries: List[VisibleDelivery] = []
    for node in nodes:
        if node.is_initial:
            continue
        for observation in node.history.last_step:
            if isinstance(observation, MessageReceipt):
                message = observation.message
                sender_node = BasicNode(message.sender, message.sender_history)
                lower = timed_network.L(sender_node.process, node.process)
                upper = timed_network.U(sender_node.process, node.process)
                graph.add_edge(sender_node, node, lower, LOWER_EDGE)
                graph.add_edge(node, sender_node, -upper, UPPER_EDGE)
                deliveries.append((sender_node, node.process, node))
    return deliveries


def ordered_past_delta(nodes) -> List[BasicNode]:
    """A deterministic ordering of a past delta for graph appends.

    Bitset deltas come out as frozensets; sorting by ``(process,
    step_count)`` makes the edge-insertion order (and therefore engine
    internals) reproducible without affecting any longest-path weight.
    """
    return sorted(nodes, key=lambda node: (node.process, node.step_count))


def local_bounds_graph(
    sigma: BasicNode, timed_network: TimedNetwork
) -> WeightedGraph[BasicNode]:
    """Build ``GB(r, sigma)`` from ``sigma``'s local state (Definition 14).

    Under a full-information protocol the past of ``sigma`` -- and every
    delivery among nodes of that past -- is determined by ``sigma``'s local
    state, so the local bounds graph does not need the run at all.  The
    construction is one :func:`append_past_nodes` batch over the whole past;
    incremental callers feed the same function per-step deltas instead.
    """
    graph: WeightedGraph[BasicNode] = WeightedGraph()
    append_past_nodes(graph, ordered_past_delta(past_nodes(sigma)), timed_network)
    return graph


def local_bounds_graph_from_run(run: "Run", sigma: BasicNode) -> WeightedGraph[BasicNode]:
    """``GB(r, sigma)`` computed as the induced subgraph of ``GB(r)``.

    Provided for cross-validation: with a full-information protocol it must
    coincide with :func:`local_bounds_graph`.
    """
    return basic_bounds_graph(run).induced_subgraph(run.past(sigma))


def verify_against_run(graph: WeightedGraph[BasicNode], run: "Run") -> Tuple[bool, str]:
    """Check that every edge constraint of a bounds graph holds in the run.

    Returns ``(ok, message)``.  This is the executable content of Lemma 1
    specialised to single edges; longest paths then hold by composition.
    """
    for edge in graph.edges:
        if not run.appears(edge.source) or not run.appears(edge.target):
            return False, f"edge endpoint missing from run: {edge}"
        source_time = run.time_of(edge.source)
        target_time = run.time_of(edge.target)
        if source_time + edge.weight > target_time:
            return (
                False,
                f"edge {edge.label} from {edge.source.describe()} (t={source_time}) to "
                f"{edge.target.describe()} (t={target_time}) violates weight {edge.weight}",
            )
    return True, "all edge constraints hold"


def precedence_set(graph: WeightedGraph[BasicNode], sigma: BasicNode) -> frozenset:
    """``V_sigma`` (Definition 12): nodes with a path to ``sigma`` in the graph."""
    return graph.reachable_to(sigma)


def is_p_closed(graph: WeightedGraph[BasicNode], subset) -> bool:
    """Whether ``subset`` is precedence-closed w.r.t. the graph (Definition 11)."""
    keep = set(subset)
    return all(edge.source in keep for edge in graph.edges if edge.target in keep)
