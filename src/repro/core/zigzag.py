"""Zigzag patterns (Definition 6) and their weights.

A zigzag pattern from ``theta`` to ``theta'`` is a sequence of two-legged
forks ``Z = (F1, ..., Fc)`` such that ``tail(F1) = theta``,
``head(Fc) = theta'`` and, for consecutive forks, ``head(Fk)`` and
``tail(Fk+1)`` lie on the same process's timeline with
``time(head(Fk)) <= time(tail(Fk+1))``.  Adjacent forks whose head and tail
coincide at the same basic node are *joined*; non-joined adjacencies
contribute one extra unit to the pattern's weight because distinct nodes on a
timeline are at least one time unit apart:

    wt(Z) = sum_k wt(Fk) + S(Z),

where ``S(Z)`` counts the non-joined adjacencies.  Theorem 1 states that a
zigzag of weight ``w`` from ``theta1`` to ``theta2`` forces
``theta1 --w--> theta2`` in the run; its checker lives in
:mod:`repro.core.theorems`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, TYPE_CHECKING

from ..simulation.network import TimedNetwork
from .forks import TwoLeggedFork
from .nodes import GeneralNode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simulation.runs import Run


class ZigzagError(ValueError):
    """Raised when a zigzag pattern is structurally malformed."""


@dataclass(frozen=True)
class ZigzagPattern:
    """A sequence of two-legged forks forming a zigzag pattern."""

    forks: Tuple[TwoLeggedFork, ...]

    def __init__(self, forks: Sequence[TwoLeggedFork]):
        fork_tuple = tuple(forks)
        if not fork_tuple:
            raise ZigzagError("a zigzag pattern needs at least one fork")
        for first, second in zip(fork_tuple, fork_tuple[1:]):
            if first.head.process != second.tail.process:
                raise ZigzagError(
                    "consecutive forks must meet on the same process timeline: "
                    f"{first.describe()} head is on {first.head.process!r} but "
                    f"{second.describe()} tail is on {second.tail.process!r}"
                )
        object.__setattr__(self, "forks", fork_tuple)

    # -- endpoints ---------------------------------------------------------------

    @property
    def tail(self) -> GeneralNode:
        """The pattern's source node: ``tail(F1)``."""
        return self.forks[0].tail

    @property
    def head(self) -> GeneralNode:
        """The pattern's target node: ``head(Fc)``."""
        return self.forks[-1].head

    def __len__(self) -> int:
        return len(self.forks)

    # -- validity in a run ----------------------------------------------------------

    def appears_in(self, run: "Run") -> bool:
        """Whether every fork's nodes resolve in the run."""
        return all(fork.appears_in(run) for fork in self.forks)

    def is_valid_in(self, run: "Run") -> bool:
        """Whether this is a zigzag pattern *of the run* (Definition 6).

        Beyond structural well-formedness this requires every fork to appear
        and, for consecutive forks, ``time(head(Fk)) <= time(tail(Fk+1))``.
        """
        if not self.appears_in(run):
            return False
        for first, second in zip(self.forks, self.forks[1:]):
            head_time = run.time_of_general(first.head)
            tail_time = run.time_of_general(second.tail)
            if head_time > tail_time:
                return False
        return True

    def joined_flags(self, run: "Run") -> Tuple[bool, ...]:
        """For each adjacency, whether the two forks are joined (same basic node)."""
        flags: List[bool] = []
        for first, second in zip(self.forks, self.forks[1:]):
            head = run.resolve(first.head)
            tail = run.resolve(second.tail)
            flags.append(head is not None and head == tail)
        return tuple(flags)

    def separations(self, run: "Run") -> int:
        """``S(Z)``: the number of adjacencies that are *not* joined."""
        return sum(1 for joined in self.joined_flags(run) if not joined)

    # -- weight ------------------------------------------------------------------------

    def fork_weight_sum(self, timed_network: TimedNetwork) -> int:
        return sum(fork.weight(timed_network) for fork in self.forks)

    def weight(self, run: "Run") -> int:
        """``wt(Z) = sum_k wt(Fk) + S(Z)`` for this pattern in ``run``."""
        return self.fork_weight_sum(run.timed_network) + self.separations(run)

    def weight_lower_bound(self, timed_network: TimedNetwork) -> int:
        """A run-independent lower bound on the weight (assumes no separations)."""
        return self.fork_weight_sum(timed_network)

    # -- run-level observation ------------------------------------------------------------

    def observed_gap(self, run: "Run") -> Optional[int]:
        """``time(head) - time(tail)`` in the run, or ``None`` if unresolved."""
        head = run.resolve(self.head)
        tail = run.resolve(self.tail)
        if head is None or tail is None:
            return None
        return run.time_of(head) - run.time_of(tail)

    # -- composition ------------------------------------------------------------------------

    def extend(self, fork: TwoLeggedFork) -> "ZigzagPattern":
        """Append one more fork (its tail must be on the current head's process)."""
        return ZigzagPattern(self.forks + (fork,))

    def concatenate(self, other: "ZigzagPattern") -> "ZigzagPattern":
        """Concatenate two patterns (the join condition is checked per run)."""
        return ZigzagPattern(self.forks + other.forks)

    def describe(self) -> str:
        inner = " | ".join(fork.describe() for fork in self.forks)
        return f"Zigzag[{inner}]"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


def single_fork_pattern(fork: TwoLeggedFork) -> ZigzagPattern:
    """A zigzag pattern consisting of a single fork (Figure 1 / Figure 3)."""
    return ZigzagPattern((fork,))
