"""Re-timing runs: the run-by-timing construction (Lemma 8).

Given a run ``r``, a p-closed subset ``V'`` of its bounds-graph nodes and a
valid timing function ``T`` on ``V'``, Lemma 8 constructs a legal run ``r[T]``
containing exactly the nodes of ``V'`` (plus the initial nodes), each
occurring at its prescribed time.  Combined with the slow timing of a node
``sigma`` this realises a run in which every constraint towards ``sigma`` is
tight, which is the engine behind Theorem 2 (zigzag necessity).

Two pragmatic deviations from the paper, both documented in DESIGN.md:

* runs here are finite prefixes, so messages sent by ``V'`` nodes towards
  processes outside ``V'`` may simply remain pending at the horizon rather
  than being delivered "in the far future"; and
* the timing of initial nodes is pinned to 0 (as it must be in any run)
  regardless of the value the timing function assigns them -- valid timing
  functions on p-closed sets always assign non-initial nodes times >= 1, so
  this never conflicts with the constraints.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple, TYPE_CHECKING

from ..simulation.context import ExternalInput
from ..simulation.runs import (
    DeliveryRecord,
    ExternalDeliveryRecord,
    Run,
    SendRecord,
)
from .bounds_graph import basic_bounds_graph, is_p_closed
from .nodes import BasicNode
from .timing import slow_timing, validate_timing

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass


class ConstructionError(ValueError):
    """Raised when the run-by-timing construction is given inconsistent inputs."""


def run_by_timing(
    run: Run,
    timing: Mapping[BasicNode, int],
    check: bool = True,
) -> Run:
    """Construct ``r[T]``: the run whose nodes are ``timing``'s domain, re-timed.

    ``timing``'s domain must be a p-closed subset of the run's bounds-graph
    nodes and the timing must be valid for it; both are verified when
    ``check`` is true.  The returned run preserves the local states (and hence
    all message contents) of the selected nodes; only their occurrence times
    change.
    """
    graph = basic_bounds_graph(run)
    domain = set(timing)
    unknown = [node for node in domain if node not in graph]
    if unknown:
        raise ConstructionError(
            f"timing domain contains nodes not in the run: {[n.describe() for n in unknown]}"
        )
    if check:
        if not is_p_closed(graph, domain):
            raise ConstructionError("the timing domain is not p-closed")
        validate_timing(graph, timing)

    horizon = max([0, *timing.values()])

    # Timelines: the initial node of every process at time 0, then the selected
    # non-initial nodes of that process at their prescribed times.
    timelines: Dict[str, List[Tuple[int, BasicNode]]] = {}
    for process in run.processes:
        timelines[process] = [(0, BasicNode.initial(process))]
    for node in sorted(domain, key=lambda n: (timing[n], n.process, n.step_count)):
        if node.is_initial:
            continue
        assigned = timing[node]
        if assigned < 1:
            raise ConstructionError(
                f"non-initial node {node.describe()} assigned illegal time {assigned}"
            )
        timelines[node.process].append((assigned, node))
    for process, timeline in timelines.items():
        ordered = sorted(timeline, key=lambda item: item[0])
        for (time_a, node_a), (time_b, node_b) in zip(ordered, ordered[1:]):
            if time_a == time_b:
                raise ConstructionError(
                    f"two nodes of {process} assigned the same time {time_a}"
                )
            if node_b.predecessor() != node_a:
                raise ConstructionError(
                    f"nodes of {process} are not consecutive local states under the "
                    "assigned timing"
                )
        timelines[process] = ordered

    # Sends: every send of the original run whose sender node is kept.
    sends: List[SendRecord] = []
    for record in run.sends:
        if record.sender_node in domain and not record.sender_node.is_initial:
            sends.append(
                SendRecord(
                    message=record.message,
                    sender_node=record.sender_node,
                    destination=record.destination,
                    send_time=timing[record.sender_node],
                )
            )

    # Deliveries: exactly the original deliveries between kept nodes, re-timed.
    deliveries: List[DeliveryRecord] = []
    delivered_keys = set()
    for record in run.deliveries:
        if record.sender_node in domain and record.receiver_node in domain:
            new_send = SendRecord(
                message=record.send.message,
                sender_node=record.sender_node,
                destination=record.destination,
                send_time=timing[record.sender_node],
            )
            deliveries.append(
                DeliveryRecord(
                    send=new_send,
                    receiver_node=record.receiver_node,
                    delivery_time=timing[record.receiver_node],
                )
            )
            delivered_keys.add((record.sender_node, record.destination))

    pending = tuple(
        record
        for record in sends
        if (record.sender_node, record.destination) not in delivered_keys
    )

    # External inputs: re-timed to the new time of their receiving node.
    externals: List[ExternalDeliveryRecord] = []
    for record in run.external_deliveries:
        if record.receiver_node in domain:
            new_time = timing[record.receiver_node]
            externals.append(
                ExternalDeliveryRecord(
                    external=ExternalInput(new_time, record.process, record.tag),
                    receiver_node=record.receiver_node,
                )
            )

    constructed = Run(
        context=run.context,
        horizon=horizon,
        timelines={p: tuple(t) for p, t in timelines.items()},
        sends=tuple(sends),
        deliveries=tuple(deliveries),
        external_deliveries=tuple(externals),
        pending=pending,
    )
    if check:
        constructed.validate(require_forced_delivery=False)
    return constructed


def slow_run(run: Run, sigma: BasicNode) -> Run:
    """The run realising the slow timing of ``sigma`` (the witness for Theorem 2).

    In the returned run, for every node ``sigma'`` that reaches ``sigma`` in
    the bounds graph, ``time(sigma) - time(sigma')`` equals the longest-path
    weight from ``sigma'`` to ``sigma`` -- i.e. every provable constraint is
    attained with equality.
    """
    timing = slow_timing(run, sigma)
    return run_by_timing(run, timing)


def realized_gap(run: Run, sigma_from: BasicNode, sigma_to: BasicNode) -> Optional[int]:
    """``time(sigma_to) - time(sigma_from)`` in a run, ``None`` if either is absent."""
    if not run.appears(sigma_from) or not run.appears(sigma_to):
        return None
    return run.time_of(sigma_to) - run.time_of(sigma_from)
