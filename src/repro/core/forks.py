"""Two-legged forks (Definition 5): the building block of zigzag patterns.

A two-legged fork ``F = <theta0, theta1, theta2>`` consists of a base node and
two message chains leaving it: the *head* chain ``p1`` (whose transmission is
bounded below by ``L(p1)``) and the *tail* chain ``p2`` (bounded above by
``U(p2)``).  Its weight is ``wt(F) = L(p1) - U(p2)``; the fork guarantees that
its head occurs at least ``wt(F)`` time units after its tail
(``tail --wt(F)--> head``), which is the timed-precedence primitive that
zigzag patterns are built from.  Figure 1 of the paper is the special case in
which both legs are single messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, TYPE_CHECKING

from ..simulation.network import Path, Process, TimedNetwork, as_path
from .nodes import BasicNode, GeneralNode, NodeError, general

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simulation.runs import Run


@dataclass(frozen=True)
class TwoLeggedFork:
    """A two-legged fork, stored as a base node plus its two leg paths.

    ``head_path`` and ``tail_path`` are walks in the network starting at the
    base node's process.  Either may be the singleton path, in which case the
    corresponding endpoint *is* the base node (this is how the trivial forks
    used to stitch zigzag patterns together are expressed).
    """

    base: GeneralNode
    head_path: Path
    tail_path: Path

    def __init__(
        self,
        base: BasicNode | GeneralNode,
        head_path: Sequence[Process],
        tail_path: Sequence[Process],
    ):
        base_node = base if isinstance(base, GeneralNode) else general(base)
        head = as_path(head_path)
        tail = as_path(tail_path)
        if head[0] != base_node.process or tail[0] != base_node.process:
            raise NodeError(
                "fork legs must start at the base node's process "
                f"({base_node.process!r}); got head={head}, tail={tail}"
            )
        object.__setattr__(self, "base", base_node)
        object.__setattr__(self, "head_path", head)
        object.__setattr__(self, "tail_path", tail)

    # -- endpoints -----------------------------------------------------------

    @property
    def head(self) -> GeneralNode:
        """``head(F) = base . p1``: the lower-bounded endpoint."""
        return self.base.follow(self.head_path)

    @property
    def tail(self) -> GeneralNode:
        """``tail(F) = base . p2``: the upper-bounded endpoint."""
        return self.base.follow(self.tail_path)

    @property
    def is_trivial(self) -> bool:
        """Whether both legs are empty (base, head and tail all coincide)."""
        return len(self.head_path) == 1 and len(self.tail_path) == 1

    # -- weight ----------------------------------------------------------------

    def weight(self, timed_network: TimedNetwork) -> int:
        """``wt(F) = L(p1) - U(p2)``."""
        return timed_network.path_lower(self.head_path) - timed_network.path_upper(
            self.tail_path
        )

    # -- run-level checks --------------------------------------------------------

    def appears_in(self, run: "Run") -> bool:
        """Whether base, head and tail all resolve to basic nodes of the run."""
        return (
            run.general_appears(self.base)
            and run.general_appears(self.head)
            and run.general_appears(self.tail)
        )

    def guaranteed_gap(self, timed_network: TimedNetwork) -> int:
        """Alias of :meth:`weight`, named for how it is used in proofs."""
        return self.weight(timed_network)

    def observed_gap(self, run: "Run") -> Optional[int]:
        """``time(head) - time(tail)`` in the run, or ``None`` if unresolved."""
        head = run.resolve(self.head)
        tail = run.resolve(self.tail)
        if head is None or tail is None:
            return None
        return run.time_of(head) - run.time_of(tail)

    def satisfies_theorem1_in(self, run: "Run") -> bool:
        """The single-fork instance of Theorem 1: observed gap >= weight."""
        gap = self.observed_gap(run)
        if gap is None:
            return False
        return gap >= self.weight(run.timed_network)

    def describe(self) -> str:
        return (
            f"Fork(base={self.base.describe()}, "
            f"head={'->'.join(self.head_path)}, tail={'->'.join(self.tail_path)})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


def trivial_fork(node: BasicNode | GeneralNode) -> TwoLeggedFork:
    """The fork whose base, head and tail are all the given node."""
    base = node if isinstance(node, GeneralNode) else general(node)
    singleton = (base.process,)
    return TwoLeggedFork(base, singleton, singleton)


def simple_fork(
    base: BasicNode | GeneralNode,
    head_recipient: Process,
    tail_recipient: Process,
) -> TwoLeggedFork:
    """The Figure-1 fork: single messages from the base to head and tail recipients."""
    base_node = base if isinstance(base, GeneralNode) else general(base)
    origin = base_node.process
    return TwoLeggedFork(base_node, (origin, head_recipient), (origin, tail_recipient))
