"""A batched longest-path engine for bounds-graph queries.

Theorem 4 turns every knowledge query into a longest-constraint-path lookup,
so a :class:`~repro.core.knowledge.KnowledgeChecker` that answers many
queries against one local state ``sigma`` keeps asking the same
:class:`~repro.core.graph.WeightedGraph` for longest paths.  The naive
Bellman-Ford relaxation in :meth:`WeightedGraph.longest_path_weights` is
re-run from scratch for every query, which makes the knowledge and
bounds-stats analysis passes the dominant cost of ``repro sweep``.

:class:`LongestPathEngine` removes that redundancy in three steps:

1. **Index-mapped arrays.**  The hashable node objects are interned into
   dense integer indices once; edges become three parallel ``int`` arrays.
   All inner loops run over machine integers instead of dict lookups on
   frozen dataclasses.
2. **Topologically-ordered DP.**  Bounds graphs are not DAGs (every
   delivery contributes a forward ``lower`` edge *and* a backward ``upper``
   edge), but their strongly connected components condense into one.  The
   engine computes the SCC condensation (iterative Tarjan) and relaxes
   edges SCC-by-SCC in topological order: cross-component edges are relaxed
   exactly once, and only the edges inside a component are iterated to a
   fixpoint (at most ``|scc|`` sweeps, which doubles as the positive-cycle
   detector).
3. **Memoized rows, batch mode, incremental growth.**  Single-source rows
   are cached per source (:meth:`row`), :meth:`all_pairs` materialises every
   row once so that an arbitrary number of subsequent queries are O(1)
   lookups, and when the underlying graph *grows* (bounds graphs only ever
   gain nodes and edges -- e.g. chain nodes added per general-node query, or
   a run extended by one step) cached rows are *extended* by a worklist
   relaxation seeded from the new edges instead of being recomputed.
4. **A volatile overlay.**  :class:`~repro.core.knowledge_session.
   KnowledgeSession` keeps the *monotone* part of an extended bounds graph
   (basic past + chain core) in the engine's base graph but must replace the
   auxiliary ``psi`` layer on every step: ``E''`` edges are retracted when a
   message is seen to arrive and chain anchors when a chain hop resolves.
   :meth:`set_overlay` installs such a volatile edge set *next to* the base
   graph without mutating it; :meth:`overlay_weight` answers longest-path
   queries over base+overlay by seeding a worklist relaxation with the
   memoized base row (longest paths only grow when edges are added, so the
   base fixpoint is a valid lower seed).  Replacing the overlay therefore
   discards only the per-step overlay rows -- the base rows, index maps and
   SCCs persist across steps.

The engine is exact: it raises :class:`PositiveCycleError` for exactly the
sources from which the naive relaxation raises, and agrees with it on every
weight.  The naive relaxation is retained on :class:`WeightedGraph` behind
``reference=True`` and the property-test suite cross-validates the two on
random DAGs, random cyclic graphs, and real scenario graphs.

**Vectorized kernels.**  When numpy is importable and the graph is large
enough for array dispatch to pay (or the engine is constructed with
``vectorized=True``), every relaxation above runs as dense array sweeps
instead of per-edge Python loops: edges are kept as dst-sorted parallel
``int64``/``float64`` blocks (globally, and per SCC for the topological DP),
and one Jacobi sweep is a gather + segment-max (``numpy.maximum.reduceat``)
+ compare-and-store — no per-edge interpreter work at all.  Batched queries
(:meth:`rows`, :meth:`all_pairs`) relax *all* requested sources
simultaneously against an ``(nodes, sources)`` distance matrix.  The
list-based kernels remain byte-for-byte in place as the fallback when numpy
is absent (and for small graphs, where they win), and the property suite
cross-validates the two paths — including ``PositiveCycleError`` source-set
agreement.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Generic, Iterable, List, Optional, Sequence, Tuple

from ..obs import metrics as _metrics
from .graph import NEG_INF, NodeT, PositiveCycleError, WeightedGraph

try:  # numpy is an optional accelerator; every kernel has a list fallback.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None

__all__ = ["EngineStats", "LongestPathEngine"]

_POSITIVE_CYCLE_MESSAGE = (
    "positive-weight cycle reachable from the source; the "
    "constraint system is infeasible"
)

#: Below this many edges the list kernels beat array dispatch overhead, so
#: auto mode (``vectorized=None``) stays on the pure-Python path.  Forcing
#: ``vectorized=True`` bypasses the threshold (benchmarks and property tests
#: do, to cross-validate both paths on graphs of every size).
VECTOR_MIN_EDGES = 4096

#: Sources per multi-source relaxation block: bounds peak memory of the
#: ``(edges, sources)`` candidate matrix without limiting batch size.
_ROWS_BLOCK = 256

# Process-wide engine counters (every engine instance feeds the same set);
# bound once so one metric event is a single attribute add on the hot path.
_C_QUERIES = _metrics.counter("engine.queries")
_C_ROWS_COMPUTED = _metrics.counter("engine.rows_computed")
_C_ROWS_EXTENDED = _metrics.counter("engine.rows_extended")
_C_ROW_HITS = _metrics.counter("engine.row_cache_hits")
_C_SYNCS = _metrics.counter("engine.syncs")
_C_SCC_RECOMPUTES = _metrics.counter("engine.scc_recomputes")
_C_OVERLAY_INSTALLS = _metrics.counter("engine.overlay_installs")
_C_OVERLAY_ROWS = _metrics.counter("engine.overlay_rows_computed")
_C_OVERLAY_HITS = _metrics.counter("engine.overlay_row_cache_hits")


def _np_edge_block(src_ids, dst_ids, weights):
    """Dst-sorted parallel arrays plus segment starts for ``maximum.reduceat``.

    Sorting by destination turns the scatter-max of one relaxation sweep into
    a contiguous segment reduction: duplicate destinations (the case plain
    fancy-index assignment silently gets wrong) collapse into one
    ``reduceat`` segment, and :func:`numpy.maximum.at`'s slow unbuffered path
    is avoided entirely.
    """
    src = _np.asarray(src_ids, dtype=_np.int64)
    dst = _np.asarray(dst_ids, dtype=_np.int64)
    weight = _np.asarray(weights, dtype=_np.float64)
    order = _np.argsort(dst, kind="stable")
    src, dst, weight = src[order], dst[order], weight[order]
    uniq_dst, starts = _np.unique(dst, return_index=True)
    return src, weight, uniq_dst, starts


def _relax_block(dist, block) -> bool:
    """One Jacobi sweep of a dst-sorted edge block; True iff any value grew.

    Works against a 1-D distance row or an ``(nodes, sources)`` matrix (the
    multi-source batch path) -- the weight vector broadcasts over columns.
    Candidates are gathered before the store, so one call never propagates a
    value through two edges; callers iterate to a fixpoint with the same
    sweep caps the list kernels use as positive-cycle detectors.
    """
    src, weight, uniq_dst, starts = block
    if dist.ndim == 2:
        weight = weight[:, None]
    segment_max = _np.maximum.reduceat(dist[src] + weight, starts, axis=0)
    old = dist[uniq_dst]
    new = _np.maximum(old, segment_max)
    if (new > old).any():
        dist[uniq_dst] = new
        return True
    return False


#: Target edge count per sub-block of a chunked sweep, and the cap on how
#: many sub-blocks one edge list is split into.  Sub-blocks are relaxed *in
#: sequence* within a sweep (block-level Gauss-Seidel), so a value can hop
#: through several edges per sweep -- alternating the block order between
#: sweeps propagates both forward and backward chains, which cuts the sweep
#: count sharply on the zigzag-shaped SCCs of bounds graphs.
_SWEEP_CHUNK_EDGES = 256
_SWEEP_CHUNKS_MAX = 16


def _np_edge_chunks(src_ids, dst_ids, weights):
    """Dst-contiguous sub-blocks (see :func:`_np_edge_block`) covering an edge list.

    Splitting the dst-sorted edge array into contiguous slices keeps every
    slice a valid reduceat block (a destination straddling a boundary simply
    appears in both slices; scatter-max is order-insensitive) while enabling
    within-sweep propagation across slices.
    """
    src = _np.asarray(src_ids, dtype=_np.int64)
    dst = _np.asarray(dst_ids, dtype=_np.int64)
    weight = _np.asarray(weights, dtype=_np.float64)
    order = _np.argsort(dst, kind="stable")
    src, dst, weight = src[order], dst[order], weight[order]
    total = len(src)
    chunks = max(1, min(_SWEEP_CHUNKS_MAX, total // _SWEEP_CHUNK_EDGES))
    size = -(-total // chunks)
    blocks = []
    for start in range(0, total, size):
        segment = dst[start : start + size]
        uniq_dst, starts = _np.unique(segment, return_index=True)
        blocks.append(
            (src[start : start + size], weight[start : start + size], uniq_dst, starts)
        )
    return tuple(blocks)


def _sweep_blocks(dist, blocks, forward: bool) -> bool:
    """One full sweep over chunked blocks; True iff any value grew.

    Every edge is relaxed exactly once per sweep regardless of direction, so
    the ``k + 1``-sweep positive-cycle caps of the list kernels carry over
    unchanged: after ``k`` full sweeps every simple path of ``<= k`` edges is
    realised, and only a positive cycle can keep values growing past that.
    """
    changed = False
    for block in blocks if forward else reversed(blocks):
        if _relax_block(dist, block):
            changed = True
    return changed


def _as_float_list(dist) -> List[float]:
    """A plain float list from either row representation (no numpy leakage)."""
    if isinstance(dist, list):
        return dist
    return dist.tolist()


@dataclass
class EngineStats:
    """Counters describing how much work the engine actually performed."""

    rows_computed: int = 0
    rows_extended: int = 0
    row_cache_hits: int = 0
    syncs: int = 0
    queries: int = 0
    overlay_rows_computed: int = 0
    overlay_row_cache_hits: int = 0
    overlay_installs: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "rows_computed": self.rows_computed,
            "rows_extended": self.rows_extended,
            "row_cache_hits": self.row_cache_hits,
            "syncs": self.syncs,
            "queries": self.queries,
            "overlay_rows_computed": self.overlay_rows_computed,
            "overlay_row_cache_hits": self.overlay_row_cache_hits,
            "overlay_installs": self.overlay_installs,
        }


class LongestPathEngine(Generic[NodeT]):
    """Batched longest-path queries over one (growing) :class:`WeightedGraph`.

    The engine observes the graph through its monotonically increasing
    ``version`` counter.  Synchronisation is lazy: the first query after the
    graph grew absorbs the new nodes/edges, recomputes the SCC condensation,
    and extends every cached row incrementally.
    """

    def __init__(
        self, graph: WeightedGraph[NodeT], vectorized: Optional[bool] = None
    ):
        self._graph = graph
        #: ``None`` = auto (numpy present and the graph is large enough),
        #: ``True``/``False`` force the numpy / list kernels respectively.
        self._vectorized = vectorized if _np is not None else False
        self._synced_version = -1
        self._synced_edge_count = 0
        # Index-mapped representation.
        self._nodes: List[NodeT] = []
        self._index: Dict[NodeT, int] = {}
        self._edge_src: List[int] = []
        self._edge_dst: List[int] = []
        self._edge_weight: List[int] = []
        self._out: List[List[int]] = []
        # SCC condensation, recomputed lazily on first row computation after
        # growth (row *extensions* and overlay relaxations never need it).
        self._comp: List[int] = []
        self._scc_members: List[List[int]] = []
        self._scc_intra: List[List[int]] = []
        self._scc_cross: List[List[int]] = []
        self._scc_version = -1
        # Vectorized mirrors, rebuilt lazily per synced version: the whole
        # edge list and the per-SCC intra/cross edges as dst-sorted blocks.
        self._np_block = None
        self._np_version = -2
        self._scc_members_np: List = []
        self._scc_intra_np: List = []
        self._scc_cross_np: List = []
        self._overlay_block = None
        # Memoized state.  Rows are plain lists on the fallback path and 1-D
        # float64 arrays on the vectorized path; the public dict views convert.
        self._rows: Dict[int, List[float]] = {}
        self._positive_cycle: Optional[bool] = None
        # Volatile overlay: a replaceable edge layer next to the base graph.
        self._overlay_edges: List[Tuple[NodeT, NodeT, int]] = []
        self._overlay_nodes: List[NodeT] = []
        self._overlay_index: Dict[NodeT, int] = {}
        self._overlay_out: Dict[int, List[Tuple[int, int]]] = {}
        self._overlay_rows: Dict[int, List[float]] = {}
        self._overlay_mapped_version: Optional[int] = None
        self.stats = EngineStats()

    # -- synchronisation with the underlying graph ------------------------------

    def _sync(self) -> None:
        graph = self._graph
        if graph.version == self._synced_version:
            return
        self.stats.syncs += 1
        _C_SYNCS.value += 1
        for node in graph.nodes[len(self._nodes) :]:
            self._index[node] = len(self._nodes)
            self._nodes.append(node)
            self._out.append([])
        new_edge_start = self._synced_edge_count
        edges = graph.edges
        for edge in edges[new_edge_start:]:
            edge_id = len(self._edge_src)
            source = self._index[edge.source]
            self._edge_src.append(source)
            self._edge_dst.append(self._index[edge.target])
            self._edge_weight.append(edge.weight)
            self._out[source].append(edge_id)
        self._synced_edge_count = len(edges)
        self._synced_version = graph.version
        self._positive_cycle = None
        if self._rows:
            for source_index, dist in list(self._rows.items()):
                try:
                    self._rows[source_index] = self._extend_row(dist, new_edge_start)
                except PositiveCycleError:
                    # The growth made a positive cycle reachable from this
                    # row's source.  Queries from *other* sources must not be
                    # poisoned, so drop the row; re-querying this source will
                    # recompute it and raise, matching the naive reference.
                    del self._rows[source_index]
                else:
                    self.stats.rows_extended += 1
                    _C_ROWS_EXTENDED.value += 1

    def _use_numpy(self) -> bool:
        """Whether relaxations dispatch to the numpy kernels (call post-sync)."""
        if _np is None:
            return False
        if self._vectorized is not None:
            return self._vectorized
        return len(self._edge_src) >= VECTOR_MIN_EDGES

    def _np_base_blocks(self):
        """The whole edge list as chunked dst-sorted blocks (rebuilt per version)."""
        if self._np_version != self._synced_version:
            if self._edge_src:
                self._np_block = _np_edge_chunks(
                    self._edge_src, self._edge_dst, self._edge_weight
                )
            else:
                self._np_block = None
            self._np_version = self._synced_version
        return self._np_block

    def _ensure_sccs(self) -> None:
        """Recompute the condensation only when a fresh DP sweep needs it."""
        if self._scc_version != self._synced_version:
            self._recompute_sccs()
            self._scc_version = self._synced_version

    def _recompute_sccs(self) -> None:
        """Iterative Tarjan; component ids come out in topological order."""
        _C_SCC_RECOMPUTES.value += 1
        n = len(self._nodes)
        order = [-1] * n
        low = [0] * n
        on_stack = [False] * n
        stack: List[int] = []
        counter = 0
        components_reverse_topo: List[List[int]] = []
        for root in range(n):
            if order[root] != -1:
                continue
            work: List[List[int]] = [[root, 0]]
            while work:
                frame = work[-1]
                node, edge_pos = frame
                if edge_pos == 0:
                    order[node] = low[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack[node] = True
                descended = False
                out = self._out[node]
                while frame[1] < len(out):
                    target = self._edge_dst[out[frame[1]]]
                    frame[1] += 1
                    if order[target] == -1:
                        work.append([target, 0])
                        descended = True
                        break
                    if on_stack[target] and order[target] < low[node]:
                        low[node] = order[target]
                if descended:
                    continue
                work.pop()
                if work and low[node] < low[work[-1][0]]:
                    low[work[-1][0]] = low[node]
                if low[node] == order[node]:
                    members: List[int] = []
                    while True:
                        member = stack.pop()
                        on_stack[member] = False
                        members.append(member)
                        if member == node:
                            break
                    components_reverse_topo.append(members)
        count = len(components_reverse_topo)
        comp = [0] * n
        members_topo: List[List[int]] = [[] for _ in range(count)]
        for reverse_position, members in enumerate(components_reverse_topo):
            component = count - 1 - reverse_position
            members_topo[component] = members
            for member in members:
                comp[member] = component
        intra: List[List[int]] = [[] for _ in range(count)]
        cross: List[List[int]] = [[] for _ in range(count)]
        for edge_id in range(len(self._edge_src)):
            source_comp = comp[self._edge_src[edge_id]]
            if source_comp == comp[self._edge_dst[edge_id]]:
                intra[source_comp].append(edge_id)
            else:
                cross[source_comp].append(edge_id)
        self._comp = comp
        self._scc_members = members_topo
        self._scc_intra = intra
        self._scc_cross = cross
        self._scc_members_np = []
        self._scc_intra_np = []
        self._scc_cross_np = []
        if self._use_numpy():
            raw_src = _np.asarray(self._edge_src, dtype=_np.int64)
            raw_dst = _np.asarray(self._edge_dst, dtype=_np.int64)
            raw_w = _np.asarray(self._edge_weight, dtype=_np.float64)
            for component in range(count):
                self._scc_members_np.append(
                    _np.asarray(members_topo[component], dtype=_np.int64)
                )
                for edge_ids, blocks, builder in (
                    # Intra blocks are swept to a fixpoint -> chunked for
                    # within-sweep propagation; cross blocks relax once.
                    (intra[component], self._scc_intra_np, _np_edge_chunks),
                    (cross[component], self._scc_cross_np, _np_edge_block),
                ):
                    if edge_ids:
                        ids = _np.asarray(edge_ids, dtype=_np.intp)
                        blocks.append(builder(raw_src[ids], raw_dst[ids], raw_w[ids]))
                    else:
                        blocks.append(None)

    # -- row computation ----------------------------------------------------------

    def _compute_row(self, source: int):
        """One topologically-ordered DP sweep from ``source``."""
        self._ensure_sccs()
        if self._use_numpy():
            return self._compute_row_np(source)
        dist: List[float] = [NEG_INF] * len(self._nodes)
        dist[source] = 0
        edge_src = self._edge_src
        edge_dst = self._edge_dst
        edge_weight = self._edge_weight
        for component in range(self._comp[source], len(self._scc_members)):
            members = self._scc_members[component]
            if all(dist[member] == NEG_INF for member in members):
                continue
            intra = self._scc_intra[component]
            if intra:
                for _ in range(len(members) + 1):
                    changed = False
                    for edge_id in intra:
                        base = dist[edge_src[edge_id]]
                        if base == NEG_INF:
                            continue
                        candidate = base + edge_weight[edge_id]
                        if candidate > dist[edge_dst[edge_id]]:
                            dist[edge_dst[edge_id]] = candidate
                            changed = True
                    if not changed:
                        break
                else:
                    raise PositiveCycleError(
                        "positive-weight cycle reachable from the source; the "
                        "constraint system is infeasible"
                    )
            for edge_id in self._scc_cross[component]:
                base = dist[edge_src[edge_id]]
                if base == NEG_INF:
                    continue
                candidate = base + edge_weight[edge_id]
                if candidate > dist[edge_dst[edge_id]]:
                    dist[edge_dst[edge_id]] = candidate
        return dist

    def _compute_row_np(self, source: int):
        """Vectorized :meth:`_compute_row`: per-SCC Jacobi sweeps over blocks.

        Identical topological structure and sweep caps as the list kernel --
        per component at most ``len(members) + 1`` sweeps (inside a
        component every optimum is realised by a simple path, so a Jacobi
        iteration converges within ``len(members)`` value-changing sweeps
        unless a positive cycle keeps pumping values), cross edges relaxed
        exactly once -- hence exact :class:`PositiveCycleError` agreement.
        """
        dist = _np.full(len(self._nodes), NEG_INF)
        dist[source] = 0.0
        for component in range(self._comp[source], len(self._scc_members)):
            members = self._scc_members_np[component]
            if not (dist[members] != NEG_INF).any():
                continue
            intra = self._scc_intra_np[component]
            if intra is not None:
                for sweep in range(members.size + 1):
                    if not _sweep_blocks(dist, intra, sweep % 2 == 0):
                        break
                else:
                    raise PositiveCycleError(_POSITIVE_CYCLE_MESSAGE)
            cross = self._scc_cross_np[component]
            if cross is not None:
                _relax_block(dist, cross)
        return dist

    def _compute_rows_block_np(self, indices: List[int]) -> bool:
        """Relax a whole batch of sources against an ``(n, S)`` matrix.

        All sources share every sweep: one gather/segment-max pass per SCC
        block relaxes every column simultaneously, walking the condensation
        in the same topological order (and with the same per-component sweep
        caps) as the per-source kernels.  Returns ``False`` (caching
        nothing) when the relaxation diverges -- some batched source reaches
        a positive cycle -- so the caller can fall back to per-source
        computation and raise from the first offending source in order.
        """
        self._ensure_sccs()
        n = len(self._nodes)
        dist = _np.full((n, len(indices)), NEG_INF)
        dist[indices, _np.arange(len(indices))] = 0.0
        for component in range(len(self._scc_members)):
            members = self._scc_members_np[component]
            if not (dist[members] != NEG_INF).any():
                continue
            intra = self._scc_intra_np[component]
            if intra is not None:
                for sweep in range(members.size + 1):
                    if not _sweep_blocks(dist, intra, sweep % 2 == 0):
                        break
                else:
                    return False
            cross = self._scc_cross_np[component]
            if cross is not None:
                _relax_block(dist, cross)
        for position, source in enumerate(indices):
            self._rows[source] = _np.ascontiguousarray(dist[:, position])
        return True

    def _materialize_rows(self, indices: Iterable[int]) -> int:
        """Compute and cache every uncached row in ``indices``.

        The vectorized path batches them ``_ROWS_BLOCK`` sources at a time
        through :meth:`_compute_rows_block_np`; the fallback (and any batch
        containing a positive-cycle source) computes per source in caller
        order, preserving the exact raise order of a sequential loop.
        """
        pending: List[int] = []
        seen = set()
        for index in indices:
            if index not in self._rows and index not in seen:
                seen.add(index)
                pending.append(index)
        if not pending:
            return 0
        position = 0
        if len(pending) > 1 and self._use_numpy():
            while position < len(pending):
                batch = pending[position : position + _ROWS_BLOCK]
                if not self._compute_rows_block_np(batch):
                    break
                self.stats.rows_computed += len(batch)
                _C_ROWS_COMPUTED.value += len(batch)
                position += len(batch)
        for index in pending[position:]:
            self._rows[index] = self._compute_row(index)
            self.stats.rows_computed += 1
            _C_ROWS_COMPUTED.value += 1
        return len(pending)

    def _extend_row(self, dist, new_edge_start: int):
        """Grow a cached row after the graph gained nodes/edges.

        Longest-path weights are monotone under edge insertion, so the old
        values are a valid lower seed.  Returns the (possibly reallocated)
        row; the list kernel grows in place, the numpy kernel concatenates.
        """
        if _np is not None and not isinstance(dist, list):
            return self._extend_row_np(dist, new_edge_start)
        self._extend_row_list(dist, new_edge_start)
        return dist

    def _extend_row_np(self, dist, new_edge_start: int):
        """Vectorized :meth:`_extend_row`: new-edge pass, then full sweeps.

        One pass over just the new edges detects the common no-op case; when
        it does change something, full-graph Jacobi sweeps (capped at
        ``n + 1`` -- a seeded relaxation converges within ``n`` sweeps
        unless a positive cycle pumps values) settle the new fixpoint.
        """
        node_count = len(self._nodes)
        if dist.shape[0] < node_count:
            dist = _np.concatenate(
                [dist, _np.full(node_count - dist.shape[0], NEG_INF)]
            )
        if new_edge_start < len(self._edge_src):
            tail_block = _np_edge_block(
                self._edge_src[new_edge_start:],
                self._edge_dst[new_edge_start:],
                self._edge_weight[new_edge_start:],
            )
            if _relax_block(dist, tail_block):
                base = self._np_base_blocks()
                for sweep in range(node_count + 1):
                    if not _sweep_blocks(dist, base, sweep % 2 == 0):
                        break
                else:
                    raise PositiveCycleError(_POSITIVE_CYCLE_MESSAGE)
        return dist

    def _extend_row_list(self, dist: List[float], new_edge_start: int) -> None:
        """Grow a cached row in place after the graph gained nodes/edges.

        A worklist relaxation rooted at the new edges converges to the exact
        new fixpoint without touching the untouched bulk of the graph.
        """
        node_count = len(self._nodes)
        if len(dist) < node_count:
            dist.extend([NEG_INF] * (node_count - len(dist)))
        edge_src = self._edge_src
        edge_dst = self._edge_dst
        edge_weight = self._edge_weight
        pending: deque = deque()
        queued = [False] * node_count
        for edge_id in range(new_edge_start, len(edge_src)):
            base = dist[edge_src[edge_id]]
            if base == NEG_INF:
                continue
            candidate = base + edge_weight[edge_id]
            target = edge_dst[edge_id]
            if candidate > dist[target]:
                dist[target] = candidate
                if not queued[target]:
                    queued[target] = True
                    pending.append(target)
        pop_budget = node_count * node_count + len(edge_src)
        while pending:
            pop_budget -= 1
            if pop_budget < 0:
                raise PositiveCycleError(
                    "positive-weight cycle reachable from the source; the "
                    "constraint system is infeasible"
                )
            node = pending.popleft()
            queued[node] = False
            base = dist[node]
            for edge_id in self._out[node]:
                candidate = base + edge_weight[edge_id]
                target = edge_dst[edge_id]
                if candidate > dist[target]:
                    dist[target] = candidate
                    if not queued[target]:
                        queued[target] = True
                        pending.append(target)

    def _row(self, source_index: int):
        row = self._rows.get(source_index)
        if row is not None:
            self.stats.row_cache_hits += 1
            _C_ROW_HITS.value += 1
            return row
        row = self._compute_row(source_index)
        self._rows[source_index] = row
        self.stats.rows_computed += 1
        _C_ROWS_COMPUTED.value += 1
        return row

    def _source_index(self, source: NodeT) -> int:
        try:
            return self._index[source]
        except KeyError:
            raise KeyError(f"source {source!r} is not a node of the graph") from None

    # -- public queries ---------------------------------------------------------

    def row(self, source: NodeT) -> Dict[NodeT, float]:
        """Longest-path weight from ``source`` to every node (``-inf`` if unreachable).

        Memoized per source; agrees with the naive
        :meth:`WeightedGraph.longest_path_weights` reference exactly,
        including raising :class:`PositiveCycleError` when a positive cycle
        is reachable from ``source``.
        """
        self._sync()
        self.stats.queries += 1
        _C_QUERIES.value += 1
        dist = self._row(self._source_index(source))
        return dict(zip(self._nodes, _as_float_list(dist)))

    def rows(self, sources: Sequence[NodeT]) -> List[Dict[NodeT, float]]:
        """Memoized rows for a batch of sources, index-aligned with ``sources``.

        Equivalent to ``[self.row(s) for s in sources]`` -- same memoization,
        same stats accounting, and the same :class:`PositiveCycleError`
        behaviour (the first offending source in ``sources`` order raises) --
        but on the vectorized path all uncached rows are settled together by
        multi-source relaxation sweeps over one ``(nodes, sources)`` matrix.
        """
        self._sync()
        indices = [self._source_index(source) for source in sources]
        self.stats.queries += len(indices)
        _C_QUERIES.value += len(indices)
        cached = set(self._rows)
        self._materialize_rows(indices)
        out: List[Dict[NodeT, float]] = []
        for index in indices:
            if index in cached:
                self.stats.row_cache_hits += 1
                _C_ROW_HITS.value += 1
            else:
                # Later duplicates of a just-computed source are cache hits,
                # exactly as they would be in a sequential row() loop.
                cached.add(index)
            out.append(dict(zip(self._nodes, _as_float_list(self._rows[index]))))
        return out

    def weight(self, source: NodeT, target: NodeT) -> Optional[int]:
        """Longest-path weight between two nodes, ``None`` when unreachable."""
        self._sync()
        self.stats.queries += 1
        _C_QUERIES.value += 1
        source_index = self._source_index(source)
        target_index = self._index.get(target)
        if target_index is None:
            raise KeyError(f"target {target!r} is not a node of the graph")
        value = self._row(source_index)[target_index]
        if value == NEG_INF:
            return None
        return int(value)

    def all_pairs(self) -> int:
        """Materialise every source row once; subsequent queries are lookups.

        Returns the number of rows that had to be computed (rows already
        cached -- including rows incrementally extended after graph growth --
        are reused, so calling :meth:`all_pairs` repeatedly is idempotent).
        """
        self._sync()
        return self._materialize_rows(range(len(self._nodes)))

    def reachable_from(self, source: NodeT) -> frozenset:
        """Nodes reachable from ``source`` (including itself), off the cached row."""
        self._sync()
        self.stats.queries += 1
        _C_QUERIES.value += 1
        dist = self._row(self._source_index(source))
        return frozenset(
            node for node, value in zip(self._nodes, dist) if value != NEG_INF
        )

    # -- the volatile overlay ----------------------------------------------------

    def set_overlay(self, edges: Iterable[Tuple[NodeT, NodeT, int]]) -> None:
        """Install (replacing any previous) a volatile edge layer.

        Overlay edges live *next to* the base graph: they participate in
        :meth:`overlay_weight` / :meth:`overlay_row` queries but never touch
        the base graph, its memoized rows, or its SCCs.  Endpoints may be
        base-graph nodes or fresh overlay-only vertices (e.g. the auxiliary
        ``psi`` nodes of an extended bounds graph).  Unlike the base graph the
        overlay may *shrink* between installs -- that is its purpose: the
        per-step retractable constraints of a
        :class:`~repro.core.knowledge_session.KnowledgeSession` go here.
        """
        self._overlay_edges = [
            (source, target, int(weight)) for source, target, weight in edges
        ]
        self._overlay_mapped_version = None
        self._overlay_rows.clear()
        self.stats.overlay_installs += 1
        _C_OVERLAY_INSTALLS.value += 1

    def _overlay_sync(self) -> None:
        """(Re)map overlay endpoints onto combined indices after base growth."""
        self._sync()
        if self._overlay_mapped_version == self._synced_version:
            return
        base_count = len(self._nodes)
        overlay_nodes: List[NodeT] = []
        overlay_index: Dict[NodeT, int] = {}
        out: Dict[int, List[Tuple[int, int]]] = {}
        flat_src: List[int] = []
        flat_dst: List[int] = []
        flat_weight: List[int] = []
        base_index = self._index
        for source, target, weight in self._overlay_edges:
            source_id = base_index.get(source)
            if source_id is None:
                source_id = overlay_index.get(source)
                if source_id is None:
                    source_id = base_count + len(overlay_nodes)
                    overlay_index[source] = source_id
                    overlay_nodes.append(source)
            target_id = base_index.get(target)
            if target_id is None:
                target_id = overlay_index.get(target)
                if target_id is None:
                    target_id = base_count + len(overlay_nodes)
                    overlay_index[target] = target_id
                    overlay_nodes.append(target)
            bucket = out.get(source_id)
            if bucket is None:
                out[source_id] = bucket = []
            bucket.append((target_id, weight))
            flat_src.append(source_id)
            flat_dst.append(target_id)
            flat_weight.append(weight)
        self._overlay_nodes = overlay_nodes
        self._overlay_index = overlay_index
        self._overlay_out = out
        if flat_src and self._use_numpy():
            self._overlay_block = _np_edge_chunks(flat_src, flat_dst, flat_weight)
        else:
            self._overlay_block = None
        self._overlay_rows.clear()
        self._overlay_mapped_version = self._synced_version

    def _combined_index(self, node: NodeT, role: str) -> int:
        index = self._index.get(node)
        if index is None:
            index = self._overlay_index.get(node)
        if index is None:
            raise KeyError(f"{role} {node!r} is not a node of the graph or overlay")
        return index

    def _compute_overlay_row(self, source: int):
        """Base row (memoized) extended to a base+overlay fixpoint.

        Longest-path weights only grow when edges are added, so the settled
        base row is a valid lower seed for the combined graph; a worklist
        relaxation rooted at the overlay edges converges to the exact
        combined fixpoint, exactly like :meth:`_extend_row` does for base
        growth.
        """
        if self._overlay_block is not None:
            return self._compute_overlay_row_np(source)
        base_count = len(self._nodes)
        total = base_count + len(self._overlay_nodes)
        if source < base_count:
            dist = list(self._row(source)) + [NEG_INF] * (total - base_count)
        else:
            dist = [NEG_INF] * total
            dist[source] = 0
        overlay_out = self._overlay_out
        edge_dst = self._edge_dst
        edge_weight = self._edge_weight
        pending: deque = deque()
        queued = [False] * total
        if source >= base_count:
            queued[source] = True
            pending.append(source)
        for origin, targets in overlay_out.items():
            base = dist[origin]
            if base == NEG_INF:
                continue
            for target, weight in targets:
                candidate = base + weight
                if candidate > dist[target]:
                    dist[target] = candidate
                    if not queued[target]:
                        queued[target] = True
                        pending.append(target)
        pop_budget = total * total + len(self._edge_src) + len(self._overlay_edges)
        while pending:
            pop_budget -= 1
            if pop_budget < 0:
                raise PositiveCycleError(
                    "positive-weight cycle reachable from the source; the "
                    "constraint system is infeasible"
                )
            node = pending.popleft()
            queued[node] = False
            base = dist[node]
            if node < base_count:
                for edge_id in self._out[node]:
                    candidate = base + edge_weight[edge_id]
                    target = edge_dst[edge_id]
                    if candidate > dist[target]:
                        dist[target] = candidate
                        if not queued[target]:
                            queued[target] = True
                            pending.append(target)
            for target, weight in overlay_out.get(node, ()):
                candidate = base + weight
                if candidate > dist[target]:
                    dist[target] = candidate
                    if not queued[target]:
                        queued[target] = True
                        pending.append(target)
        return dist

    def _compute_overlay_row_np(self, source: int):
        """Vectorized :meth:`_compute_overlay_row`: alternating block sweeps.

        Each sweep relaxes the overlay block then the base block against the
        combined ``base+overlay`` index space; seeded from the memoized base
        row, the iteration settles within ``total`` sweeps unless a positive
        cycle through the overlay keeps pumping values (the ``total + 1``
        cap, matching the worklist kernel's budget-based detector).
        """
        base_count = len(self._nodes)
        total = base_count + len(self._overlay_nodes)
        if source < base_count:
            seed = _np.asarray(self._row(source), dtype=_np.float64)
            dist = _np.concatenate([seed, _np.full(total - base_count, NEG_INF)])
        else:
            dist = _np.full(total, NEG_INF)
            dist[source] = 0.0
        base_blocks = self._np_base_blocks()
        overlay_blocks = self._overlay_block
        for sweep in range(total + 1):
            forward = sweep % 2 == 0
            changed = _sweep_blocks(dist, overlay_blocks, forward)
            if base_blocks is not None and _sweep_blocks(dist, base_blocks, forward):
                changed = True
            if not changed:
                return dist
        raise PositiveCycleError(_POSITIVE_CYCLE_MESSAGE)

    def _overlay_row_values(self, source: int):
        row = self._overlay_rows.get(source)
        if row is not None:
            self.stats.overlay_row_cache_hits += 1
            _C_OVERLAY_HITS.value += 1
            return row
        row = self._compute_overlay_row(source)
        self._overlay_rows[source] = row
        self.stats.overlay_rows_computed += 1
        _C_OVERLAY_ROWS.value += 1
        return row

    def overlay_weight(self, source: NodeT, target: NodeT) -> Optional[int]:
        """Longest-path weight over base+overlay, ``None`` when unreachable.

        With an empty overlay this agrees with :meth:`weight` exactly.
        """
        self._overlay_sync()
        self.stats.queries += 1
        _C_QUERIES.value += 1
        source_index = self._combined_index(source, "source")
        target_index = self._combined_index(target, "target")
        value = self._overlay_row_values(source_index)[target_index]
        if value == NEG_INF:
            return None
        return int(value)

    def overlay_row(self, source: NodeT) -> Dict[NodeT, float]:
        """Longest-path weights from ``source`` over base+overlay, per node."""
        self._overlay_sync()
        self.stats.queries += 1
        _C_QUERIES.value += 1
        dist = self._overlay_row_values(self._combined_index(source, "source"))
        return dict(zip(list(self._nodes) + self._overlay_nodes, _as_float_list(dist)))

    def has_positive_cycle(self) -> bool:
        """Whether any positive-weight cycle exists anywhere in the graph.

        Cycles live entirely inside strongly connected components, so each
        component is checked independently with a zero-initialised
        relaxation; the result is memoized until the graph grows.
        """
        self._sync()
        if self._positive_cycle is not None:
            return self._positive_cycle
        self._ensure_sccs()
        if self._use_numpy():
            # Cycles are confined to components, so one zero-initialised
            # relaxation over *all* intra-component edges at once detects a
            # positive cycle anywhere: without one it settles within ``n``
            # sweeps (optima are simple paths inside components).
            intra_ids = [
                edge_id for intra in self._scc_intra for edge_id in intra
            ]
            result = False
            if intra_ids:
                blocks = _np_edge_chunks(
                    [self._edge_src[i] for i in intra_ids],
                    [self._edge_dst[i] for i in intra_ids],
                    [self._edge_weight[i] for i in intra_ids],
                )
                dist = _np.zeros(len(self._nodes))
                for sweep in range(len(self._nodes) + 1):
                    if not _sweep_blocks(dist, blocks, sweep % 2 == 0):
                        break
                else:
                    result = True
            self._positive_cycle = result
            return result
        edge_src = self._edge_src
        edge_dst = self._edge_dst
        edge_weight = self._edge_weight
        result = False
        for component, intra in enumerate(self._scc_intra):
            if not intra:
                continue
            dist = {member: 0 for member in self._scc_members[component]}
            for _ in range(len(dist) + 1):
                changed = False
                for edge_id in intra:
                    candidate = dist[edge_src[edge_id]] + edge_weight[edge_id]
                    if candidate > dist[edge_dst[edge_id]]:
                        dist[edge_dst[edge_id]] = candidate
                        changed = True
                if not changed:
                    break
            else:
                result = True
                break
        self._positive_cycle = result
        return result

    # -- introspection ---------------------------------------------------------

    @property
    def cached_row_count(self) -> int:
        return len(self._rows)

    def component_count(self) -> int:
        self._sync()
        self._ensure_sccs()
        return len(self._scc_members)

    def describe(self) -> str:
        self._sync()
        self._ensure_sccs()
        kernel = "numpy" if self._use_numpy() else "list"
        return (
            f"LongestPathEngine(nodes={len(self._nodes)}, "
            f"edges={len(self._edge_src)}, sccs={len(self._scc_members)}, "
            f"rows={len(self._rows)}, kernel={kernel})"
        )
