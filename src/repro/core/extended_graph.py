"""The extended bounds graph ``GE(r, sigma)`` (Definition 16) and its
knowledge-oriented augmentation.

``GB(r, sigma)`` -- the part of the bounds graph a node can see -- misses
timing information that the node nevertheless possesses: messages that left
its past but have not (yet) been seen to arrive impose constraints through
their upper bounds, and under a flooding full-information protocol the node
even knows that *future* deliveries beyond its view will themselves trigger
further sends.  The paper captures this by adding one *auxiliary node*
``psi_i`` per process, standing for the earliest point on ``i``'s timeline
beyond the view of ``sigma`` at which messages will be delivered, together
with three extra edge sets:

* ``E'``  : ``boundary_i --1--> psi_i`` (the auxiliary node strictly follows
  the last ``i``-node in the past);
* ``E''`` : ``psi_j --(-U_ij)--> sigma_s`` for every message sent at a past
  node ``sigma_s`` towards ``j`` that was not delivered inside the past;
* ``E'''``: ``psi_i --(-U_ji)--> psi_j`` for every channel ``(j, i)``
  (flooding: the first beyond-view delivery at ``j`` triggers a send to ``i``
  that must itself land beyond the view within ``U_ji``).

On top of ``GE(r, sigma)`` this module adds *chain nodes* for arbitrary
``sigma``-recognized general nodes: the unresolved suffix of a general node's
message chain is materialised as virtual vertices connected by the chain's
lower/upper bound edges and anchored after the relevant auxiliary nodes.
Longest paths in the resulting graph are exactly the timed-precedence facts
``sigma`` *knows* (Theorem 4); :mod:`repro.core.knowledge` exposes that as an
API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..simulation.network import Process, TimedNetwork
from .causality import (
    boundary_nodes,
    local_delivery_map,
    past_nodes,
)
from .bounds_graph import local_bounds_graph
from .graph import WeightedGraph
from .longest_paths import LongestPathEngine
from .nodes import BasicNode, GeneralNode

#: Edge labels specific to the extended graph.
AUXILIARY_EDGE = "aux"  # E'  : boundary -> psi
UNDELIVERED_EDGE = "undelivered"  # E'' : psi -> sending node
FLOODING_EDGE = "flooding"  # E''': psi -> psi
CHAIN_LOWER_EDGE = "chain-lower"
CHAIN_UPPER_EDGE = "chain-upper"
CHAIN_ANCHOR_EDGE = "chain-anchor"


class ExtendedGraphError(ValueError):
    """Raised when the extended graph is asked about nodes it cannot reason about."""


@dataclass(frozen=True)
class AuxiliaryNode:
    """The auxiliary node ``psi_i`` of process ``i``."""

    process: Process

    def describe(self) -> str:
        return f"psi({self.process})"


@dataclass(frozen=True)
class ChainNode:
    """A virtual vertex for an unresolved hop of a general node's message chain.

    ``prefix`` is the general node ``<sigma', p[0..k]>`` describing the
    delivery this vertex stands for.  Chain nodes are shared between general
    nodes with a common prefix, so repeatedly adding related general nodes
    never duplicates vertices.
    """

    prefix: GeneralNode

    @property
    def process(self) -> Process:
        return self.prefix.process

    def describe(self) -> str:
        return f"chain({self.prefix.describe()})"


GraphKey = Union[BasicNode, AuxiliaryNode, ChainNode]

#: One auxiliary-layer edge: ``(source, target, weight, label)``.
AuxiliaryEdge = Tuple[GraphKey, GraphKey, int, str]


def undelivered_pairs(
    past: Iterable[BasicNode],
    delivered: Mapping[Tuple[BasicNode, Process], BasicNode],
    timed_network: TimedNetwork,
) -> List[Tuple[BasicNode, Process]]:
    """``(sender_node, destination)`` sends with no delivery inside the past.

    Under flooding, every non-initial past node sent to all of its
    out-neighbours; the pairs whose delivery is not visible are the ones the
    ``E''`` edges constrain.  Incremental callers maintain this set with
    O(delta) work instead (new nodes add pairs, new visible deliveries
    retract them) -- this function is the from-scratch reference shape.
    """
    pairs: List[Tuple[BasicNode, Process]] = []
    for node in past:
        if node.is_initial:
            continue  # initial nodes never send (processes are event driven)
        for destination in timed_network.out_neighbors(node.process):
            if (node, destination) not in delivered:
                pairs.append((node, destination))
    return pairs


def flooding_edges(timed_network: TimedNetwork) -> List[AuxiliaryEdge]:
    """The static ``E'''`` edges: one per channel, independent of any view."""
    edges: List[AuxiliaryEdge] = []
    for sender, receiver in timed_network.channels:
        upper = timed_network.U(sender, receiver)
        edges.append(
            (AuxiliaryNode(receiver), AuxiliaryNode(sender), -upper, FLOODING_EDGE)
        )
    return edges


def auxiliary_layer_edges(
    boundary: Mapping[Process, BasicNode],
    undelivered: Iterable[Tuple[BasicNode, Process]],
    timed_network: TimedNetwork,
    include_flooding: bool = True,
) -> List[AuxiliaryEdge]:
    """The ``E'``/``E''``/``E'''`` edge set for one view of a run.

    This is the *whole* retractable part of the extended bounds graph: as the
    view grows, boundaries advance (``E'``), messages are seen to arrive
    (``E''`` edges must be dropped), and only ``E'''`` stays fixed.  Both the
    one-shot :class:`ExtendedBoundsGraph` and the incremental
    :class:`~repro.core.knowledge_session.KnowledgeSession` (which reinstalls
    the set as a volatile engine overlay on every step, caching the static
    ``E'''`` tail via ``include_flooding=False``) build it here.
    """
    edges: List[AuxiliaryEdge] = []
    # E': the auxiliary node of i strictly follows i's boundary node.
    for process in sorted(boundary):
        edges.append((boundary[process], AuxiliaryNode(process), 1, AUXILIARY_EDGE))
    # E'': messages sent from the past that were not delivered inside it.
    upper_of = timed_network.U
    for sender_node, destination in undelivered:
        upper = upper_of(sender_node.process, destination)
        edges.append(
            (AuxiliaryNode(destination), sender_node, -upper, UNDELIVERED_EDGE)
        )
    # E''': flooding propagates the "beyond the view" frontier.
    if include_flooding:
        edges.extend(flooding_edges(timed_network))
    return edges


def resolve_chain_prefix(
    theta: GeneralNode,
    delivered: Mapping[Tuple[BasicNode, Process], BasicNode],
) -> Tuple[BasicNode, int]:
    """Follow ``theta``'s chain through the visible deliveries.

    Returns ``(last_resolved_node, hops_resolved)``: the basic node reached
    after the longest chain prefix whose messages are all seen to arrive.
    """
    resolved = theta.base
    hops_resolved = 0
    for next_process in theta.path[1:]:
        receiver = delivered.get((resolved, next_process))
        if receiver is None:
            break
        resolved = receiver
        hops_resolved += 1
    return resolved, hops_resolved


class ExtendedBoundsGraph:
    """``GE(r, sigma)`` plus chain nodes for general nodes of interest.

    The graph is built purely from ``sigma``'s local state and the static
    timed network; it assumes the system runs a flooding full-information
    protocol (every non-initial node sends to all of its out-neighbours),
    which is the setting of Theorem 4.
    """

    def __init__(
        self,
        sigma: BasicNode,
        timed_network: TimedNetwork,
        include_auxiliary: bool = True,
    ):
        self.sigma = sigma
        self.timed_network = timed_network
        self.include_auxiliary = include_auxiliary
        # These all come from the intern pool's identity-keyed causal caches
        # (bitset pasts), so building several graphs / checkers over the same
        # sigma re-walks nothing.
        self.past = past_nodes(sigma)
        self.boundary = boundary_nodes(sigma)
        self.delivered = local_delivery_map(sigma)
        self.graph: WeightedGraph[GraphKey] = local_bounds_graph(sigma, timed_network)
        self._chain_nodes: set = set()
        if include_auxiliary:
            self._build_auxiliary_layer()

    # -- construction ------------------------------------------------------------

    def _build_auxiliary_layer(self) -> None:
        net = self.timed_network

        # Auxiliary nodes, one per process.
        for process in net.processes:
            self.graph.add_node(AuxiliaryNode(process))

        for source, target, weight, label in auxiliary_layer_edges(
            self.boundary, undelivered_pairs(self.past, self.delivered, net), net
        ):
            self.graph.add_edge(source, target, weight, label)

    # -- node access ----------------------------------------------------------------

    def auxiliary(self, process: Process) -> AuxiliaryNode:
        if process not in self.timed_network.processes:
            raise ExtendedGraphError(f"unknown process {process!r}")
        return AuxiliaryNode(process)

    def basic_keys(self) -> Tuple[BasicNode, ...]:
        return tuple(node for node in self.graph.nodes if isinstance(node, BasicNode))

    def auxiliary_keys(self) -> Tuple[AuxiliaryNode, ...]:
        return tuple(node for node in self.graph.nodes if isinstance(node, AuxiliaryNode))

    def chain_keys(self) -> Tuple[ChainNode, ...]:
        return tuple(node for node in self.graph.nodes if isinstance(node, ChainNode))

    # -- general nodes -----------------------------------------------------------------

    def add_general_node(self, theta: GeneralNode) -> GraphKey:
        """Ensure ``theta`` is represented in the graph and return its vertex.

        ``theta`` must be sigma-recognized.  The resolved prefix of its chain
        maps to basic nodes already present; every unresolved hop becomes a
        :class:`ChainNode` connected by the channel's lower/upper bound edges
        and anchored after the auxiliary node of its process (the delivery
        necessarily happens beyond the view of ``sigma``).
        """
        # Equivalent to ``is_recognized(theta, self.sigma)`` but answered from
        # the past set cached at construction instead of re-walking the
        # causal past on every query.
        if theta.base not in self.past:
            raise ExtendedGraphError(
                f"{theta.describe()} is not recognized at {self.sigma.describe()}"
            )

        current: GraphKey = theta.base
        if current not in self.graph:
            raise ExtendedGraphError(
                f"base node {theta.base.describe()} is missing from the past of "
                f"{self.sigma.describe()}"
            )

        resolved, hops_resolved = resolve_chain_prefix(theta, self.delivered)
        current = resolved

        if hops_resolved == theta.hops:
            return current

        if resolved.is_initial:
            raise ExtendedGraphError(
                f"the chain of {theta.describe()} leaves the initial node "
                f"{resolved.describe()}, which never sends messages; the general node "
                "does not appear in any run"
            )

        previous_key: GraphKey = resolved
        previous_process = resolved.process
        for hop_index in range(hops_resolved + 1, theta.hops + 1):
            prefix = theta.prefix(hop_index)
            hop_process = prefix.process
            key = ChainNode(prefix)
            if key not in self._chain_nodes:
                self._chain_nodes.add(key)
                lower = self.timed_network.L(previous_process, hop_process)
                upper = self.timed_network.U(previous_process, hop_process)
                self.graph.add_edge(previous_key, key, lower, CHAIN_LOWER_EDGE)
                self.graph.add_edge(key, previous_key, -upper, CHAIN_UPPER_EDGE)
                if self.include_auxiliary:
                    self.graph.add_edge(
                        AuxiliaryNode(hop_process), key, 0, CHAIN_ANCHOR_EDGE
                    )
            previous_key = key
            previous_process = hop_process
        return previous_key

    def add_general_nodes(self, thetas: Sequence[GeneralNode]) -> List[GraphKey]:
        """Materialise many general nodes up front and return their vertices.

        Batching the mutations before any longest-path query lets the engine
        settle on one graph snapshot, so memoized rows are computed once and
        shared across every query instead of being extended after each
        interleaved insertion.
        """
        return [self.add_general_node(theta) for theta in thetas]

    # -- queries ---------------------------------------------------------------------------

    @property
    def engine(self) -> LongestPathEngine:
        """The batched longest-path engine over the current graph snapshot."""
        return self.graph.engine

    def longest_weight(self, source: GraphKey, target: GraphKey) -> Optional[int]:
        """The longest-path weight between two vertices, or ``None`` if unreachable."""
        return self.graph.longest_path_weight(source, target)

    def longest_weight_between(
        self, theta1: GeneralNode, theta2: GeneralNode
    ) -> Optional[int]:
        """Longest constraint-path weight between two sigma-recognized general nodes."""
        key1 = self.add_general_node(theta1)
        key2 = self.add_general_node(theta2)
        return self.longest_weight(key1, key2)

    def batch_weights(
        self, pairs: Sequence[Tuple[GeneralNode, GeneralNode]]
    ) -> List[Optional[int]]:
        """Longest constraint-path weights for many general-node pairs at once.

        All general nodes are added to the graph first (the only mutating
        step), then every weight is answered off the engine's memoized rows.
        Equivalent to calling :meth:`longest_weight_between` per pair, but the
        relaxation cost is paid per distinct *source*, not per query.
        """
        flat = self.add_general_nodes([theta for pair in pairs for theta in pair])
        engine = self.graph.engine
        return [
            engine.weight(flat[index], flat[index + 1])
            for index in range(0, len(flat), 2)
        ]

    def all_pairs(self) -> int:
        """Materialise every longest-path row of the current graph at once.

        Returns the number of rows actually computed; afterwards any number
        of :meth:`longest_weight` queries on the same sigma are O(1) lookups
        until the graph grows again.
        """
        return self.graph.engine.all_pairs()

    def constraint_path(
        self, theta1: GeneralNode, theta2: GeneralNode
    ):
        """The longest constraint path between two general nodes as ``(weight, edges)``."""
        key1 = self.add_general_node(theta1)
        key2 = self.add_general_node(theta2)
        return self.graph.longest_path(key1, key2)

    def edge_summary(self) -> Dict[str, int]:
        """How many edges of each kind the graph contains (useful for Figure 8)."""
        counts: Dict[str, int] = {}
        for edge in self.graph.edges:
            counts[edge.label] = counts.get(edge.label, 0) + 1
        return counts

    def describe(self) -> str:
        counts = self.edge_summary()
        summary = ", ".join(f"{label}={count}" for label, count in sorted(counts.items()))
        return (
            f"ExtendedBoundsGraph(sigma={self.sigma.describe()}, "
            f"nodes={len(self.graph)}, edges={self.graph.edge_count()}, {summary})"
        )
