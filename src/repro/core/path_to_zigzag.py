"""Converting bounds-graph paths into zigzag patterns (Lemma 5).

Lemma 5 of the paper states that every path in the basic bounds graph
``GB(r)`` between two basic nodes induces a zigzag pattern of equal weight
between (general nodes corresponding to) those basic nodes.  The construction
is the bridge between the graph-theoretic argument of Theorem 2 and the
communication-pattern statement of the theorem: the longest path from
``sigma1`` to ``sigma2`` both *is* the tightest provable constraint and
*materialises* as a zigzag in the run.

The conversion follows the paper's inductive proof edge by edge:

* a ``lower`` edge (a message from the current node) extends the pattern with
  a fork whose head leg is that single message, joined to the next fork;
* an ``upper`` edge (a message *to* the current node) extends the next fork's
  tail leg by the message's hop, again joined;
* a ``succ`` edge contributes a trivial fork that is *not* joined to its
  successor, adding the one-unit separation to the weight.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, TYPE_CHECKING

from .bounds_graph import LOWER_EDGE, SUCCESSOR_EDGE, UPPER_EDGE, basic_bounds_graph
from .forks import TwoLeggedFork, trivial_fork
from .graph import Edge
from .nodes import BasicNode, GeneralNode, general
from .zigzag import ZigzagPattern

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simulation.runs import Run


class ConversionError(ValueError):
    """Raised when a path cannot be converted (malformed labels or endpoints)."""


def path_to_zigzag(
    run: "Run",
    path_edges: Sequence[Edge[BasicNode]],
    theta1: Optional[GeneralNode] = None,
    theta2: Optional[GeneralNode] = None,
) -> ZigzagPattern:
    """Convert a ``GB(r)`` path into a zigzag pattern of the same weight.

    ``path_edges`` is the edge sequence of a path from ``basic(theta1, r)`` to
    ``basic(theta2, r)``; when the general nodes are omitted they default to
    the path's basic endpoints themselves.
    """
    if not path_edges and theta1 is None and theta2 is None:
        raise ConversionError("an empty path needs explicit endpoint nodes")
    if path_edges:
        source = path_edges[0].source
        target = path_edges[-1].target
        for first, second in zip(path_edges, path_edges[1:]):
            if first.target != second.source:
                raise ConversionError("edges do not form a contiguous path")
    else:
        source = run.resolve(theta1)  # type: ignore[arg-type]
        target = run.resolve(theta2)  # type: ignore[arg-type]
        if source is None or target is None or source != target:
            raise ConversionError("empty path endpoints must resolve to the same node")

    start = theta1 if theta1 is not None else general(source)
    end = theta2 if theta2 is not None else general(target)

    resolved_start = run.resolve(start)
    resolved_end = run.resolve(end)
    if resolved_start != source or resolved_end != target:
        raise ConversionError(
            "the provided general nodes do not resolve to the path's endpoints"
        )

    return _convert(run, list(path_edges), start, end)


def _convert(
    run: "Run",
    edges: list,
    theta1: GeneralNode,
    theta2: GeneralNode,
) -> ZigzagPattern:
    # Base case: no edges left -- both endpoints are the same basic node.
    if not edges:
        return ZigzagPattern((trivial_fork(theta1), trivial_fork(theta2)))

    edge = edges[0]
    rest = edges[1:]
    next_theta = general(edge.target)
    suffix = _convert(run, rest, next_theta, theta2)

    process = theta1.process
    if edge.label == LOWER_EDGE:
        # A message sent at theta1's node to edge.target's process: new fork whose
        # head is that delivery and whose tail is theta1 itself; it is joined to the
        # suffix because its head *is* the suffix's tail node.
        fork = TwoLeggedFork(theta1, (process, edge.target.process), (process,))
        return ZigzagPattern((fork,) + suffix.forks)
    if edge.label == UPPER_EDGE:
        # A message sent at edge.target's node and received at theta1's node:
        # extend the suffix's first fork's tail leg by that hop and prepend a
        # trivial fork at theta1 (joined: the extended tail resolves to theta1's node).
        first = suffix.forks[0]
        extended = TwoLeggedFork(
            first.base,
            first.head_path,
            first.tail_path + (process,),
        )
        return ZigzagPattern((trivial_fork(theta1), extended) + suffix.forks[1:])
    if edge.label == SUCCESSOR_EDGE:
        # theta1's node is the predecessor of the suffix's tail node on the same
        # timeline: prepend a trivial fork, deliberately *not* joined, which is what
        # contributes the +1 separation to the weight.
        return ZigzagPattern((trivial_fork(theta1),) + suffix.forks)
    raise ConversionError(f"unknown bounds-graph edge label {edge.label!r}")


def longest_zigzag_between(
    run: "Run", source: BasicNode, target: BasicNode
) -> Optional[Tuple[int, ZigzagPattern]]:
    """The maximum-weight zigzag between two basic nodes of a run.

    Computes the longest path in ``GB(r)`` and converts it via Lemma 5.
    Returns ``None`` when no path (hence no zigzag-derived constraint) exists.
    """
    graph = basic_bounds_graph(run)
    result = graph.longest_path(source, target)
    if result is None:
        return None
    weight, edges = result
    pattern = path_to_zigzag(run, edges, general(source), general(target))
    return weight, pattern
