"""Sigma-visible zigzag patterns (Definition 7).

A zigzag pattern guarantees a timed precedence, but a process can only *use*
the guarantee if it can tell that the pattern exists.  Information does not
flow along a zigzag (forks point away from each other), so visibility has to
be arranged explicitly: a zigzag ``Z = (F1, ..., Fc)`` is ``sigma``-visible in
a run when

* the head of every fork except the last happens-before ``sigma`` (so sigma
  has seen the order in which the pivotal intermediate messages arrived), and
* the base of the last fork is a general node rooted in sigma's past.

Theorem 4 says sigma-visible zigzags of weight at least ``x`` are exactly what
it takes for ``sigma`` to know ``theta1 --x--> theta2``; the quantitative side
of that equivalence is computed by :mod:`repro.core.knowledge`, while this
module provides the pattern-level predicate and a search utility that
exhibits an explicit witness pattern on small instances.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, TYPE_CHECKING

from .causality import in_past_many
from .forks import TwoLeggedFork
from .nodes import BasicNode, GeneralNode
from .zigzag import ZigzagPattern

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simulation.runs import Run


def is_visible_zigzag(pattern: ZigzagPattern, sigma: BasicNode, run: "Run") -> bool:
    """Whether ``pattern`` is a sigma-visible zigzag pattern of ``run``.

    Recognition checks are probes against sigma's cached past bitset (pasts
    include the full local timeline prefix, so past membership is exactly
    happens-before here).  All of the pattern's probes -- every non-final
    fork head plus the last fork's base -- go through one batched
    :func:`in_past_many` call, which on large pasts is a single vectorized
    gather instead of per-fork bit probes.
    """
    if not pattern.is_valid_in(run):
        return False
    forks = pattern.forks
    probes: List[BasicNode] = []
    for fork in forks[:-1]:
        head = run.resolve(fork.head)
        if head is None:
            return False
        probes.append(head)
    probes.append(forks[-1].base.base)
    return all(in_past_many(probes, sigma))


def visible_weight(pattern: ZigzagPattern, sigma: BasicNode, run: "Run") -> Optional[int]:
    """The pattern's weight if it is sigma-visible in the run, else ``None``."""
    if not is_visible_zigzag(pattern, sigma, run):
        return None
    return pattern.weight(run)


def _candidate_forks(
    run: "Run",
    sigma: BasicNode,
    max_leg_hops: int,
) -> List[TwoLeggedFork]:
    """All forks rooted in sigma's past with legs of at most ``max_leg_hops`` hops.

    Used by the exhaustive search on small instances; the number of candidate
    forks grows quickly with the leg length, so keep ``max_leg_hops`` small.
    """
    net = run.timed_network.network
    forks: List[TwoLeggedFork] = []
    past = run.past(sigma)
    for base in past:
        if base.is_initial:
            continue
        origin = base.process
        legs = [path for path in net.iter_paths(origin, max_leg_hops)]
        for head_path in legs:
            for tail_path in legs:
                forks.append(TwoLeggedFork(base, head_path, tail_path))
    return forks


def search_visible_zigzag(
    run: "Run",
    sigma: BasicNode,
    theta1: GeneralNode,
    theta2: GeneralNode,
    min_weight: int,
    max_forks: int = 3,
    max_leg_hops: int = 2,
) -> Optional[ZigzagPattern]:
    """Exhaustively search for a sigma-visible zigzag from theta1 to theta2.

    This is a reference implementation used by tests and small demos: it
    enumerates fork sequences (up to ``max_forks`` forks with legs of up to
    ``max_leg_hops`` hops) and returns the first sigma-visible pattern whose
    endpoints resolve to the requested nodes and whose weight reaches
    ``min_weight``.  For anything beyond toy sizes use the extended bounds
    graph characterisation in :mod:`repro.core.knowledge` instead.
    """
    target_tail = run.resolve(theta1)
    target_head = run.resolve(theta2)
    if target_tail is None or target_head is None:
        return None
    candidates = _candidate_forks(run, sigma, max_leg_hops)

    # Index forks by the basic node their tail resolves to, for chaining.
    tails: dict = {}
    for fork in candidates:
        resolved = run.resolve(fork.tail)
        if resolved is None:
            continue
        tails.setdefault(resolved.process, []).append((fork, resolved))

    def extend(partial: Tuple[TwoLeggedFork, ...]) -> Optional[ZigzagPattern]:
        pattern = ZigzagPattern(partial)
        head = run.resolve(pattern.head)
        if head is not None and head == target_head:
            if (
                pattern.is_valid_in(run)
                and is_visible_zigzag(pattern, sigma, run)
                and pattern.weight(run) >= min_weight
            ):
                return pattern
        if len(partial) >= max_forks:
            return None
        current_head = run.resolve(partial[-1].head)
        if current_head is None:
            return None
        for fork, resolved_tail in tails.get(current_head.process, ()):
            if run.time_of(resolved_tail) < run.time_of(current_head):
                continue
            found = extend(partial + (fork,))
            if found is not None:
                return found
        return None

    for fork in candidates:
        resolved_tail = run.resolve(fork.tail)
        if resolved_tail != target_tail:
            continue
        found = extend((fork,))
        if found is not None:
            return found
    return None
