"""Executable checkers for the paper's four theorems.

The paper proves its results once and for all; a reproduction demonstrates
them by *checking* the theorem statements on concrete instances.  Each checker
here returns a small report object so tests and benchmarks can assert both the
verdict and the quantities involved (weights, gaps, witnesses).

* Theorem 1 (zigzag sufficiency): a zigzag pattern's weight lower-bounds the
  tail-to-head gap in the run.
* Theorem 2 (zigzag necessity): whenever a precedence is supported, the
  longest bounds-graph path yields a zigzag of sufficient weight, and the slow
  run realises the bound with equality (tightness).
* Theorem 3 (knowledge is necessary for coordination): whenever the acting
  process performs its action, the "go" node is in its past and the required
  precedence is known at its node.
* Theorem 4 (visible zigzag theorem): the knowledge computed from the extended
  bounds graph coincides with the ground-truth minimum gap over all
  indistinguishable runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple, TYPE_CHECKING

from ..simulation.network import TimedNetwork
from .knowledge import KnowledgeChecker, empirical_min_gap
from .nodes import BasicNode, GeneralNode, general
from .path_to_zigzag import longest_zigzag_between
from .precedence import supports
from .run_construction import realized_gap, slow_run
from .zigzag import ZigzagPattern

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simulation.runs import Run


# ---------------------------------------------------------------------------
# Theorem 1
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Theorem1Report:
    """Outcome of checking zigzag sufficiency for one pattern in one run."""

    valid_pattern: bool
    weight: Optional[int]
    observed_gap: Optional[int]

    @property
    def holds(self) -> bool:
        """Theorem 1 never fails for valid patterns; ``False`` would be a bug."""
        if not self.valid_pattern:
            return True  # vacuous: the theorem only speaks about patterns of the run
        assert self.weight is not None and self.observed_gap is not None
        return self.observed_gap >= self.weight


def check_theorem1(run: "Run", pattern: ZigzagPattern) -> Theorem1Report:
    """Check ``(R, r) |= theta1 --wt(Z)--> theta2`` for a zigzag of the run."""
    if not pattern.is_valid_in(run):
        return Theorem1Report(valid_pattern=False, weight=None, observed_gap=None)
    return Theorem1Report(
        valid_pattern=True,
        weight=pattern.weight(run),
        observed_gap=pattern.observed_gap(run),
    )


# ---------------------------------------------------------------------------
# Theorem 2
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Theorem2Report:
    """Outcome of the zigzag-necessity check between two basic nodes of a run."""

    constraint_weight: Optional[int]
    zigzag: Optional[ZigzagPattern]
    zigzag_weight: Optional[int]
    slow_run_gap: Optional[int]

    @property
    def has_constraint(self) -> bool:
        return self.constraint_weight is not None

    def witnesses(self, margin: int) -> bool:
        """Whether the extracted zigzag witnesses ``sigma1 --margin--> sigma2``."""
        return self.zigzag_weight is not None and self.zigzag_weight >= margin

    @property
    def tight(self) -> bool:
        """Whether the slow run attains the constraint with equality."""
        return (
            self.constraint_weight is not None
            and self.slow_run_gap is not None
            and self.slow_run_gap == self.constraint_weight
        )


def check_theorem2(run: "Run", sigma1: BasicNode, sigma2: BasicNode) -> Theorem2Report:
    """Extract the Theorem 2 witness between two basic nodes of a run.

    Computes the longest bounds-graph path from ``sigma1`` to ``sigma2``,
    converts it into a zigzag pattern of equal weight (Lemma 5), and builds
    the slow run of ``sigma2`` to confirm the constraint is tight.  If a
    system supports ``sigma1 --x--> sigma2`` then, by the theorem, the
    returned ``zigzag_weight`` is at least ``x``.
    """
    found = longest_zigzag_between(run, sigma1, sigma2)
    if found is None:
        return Theorem2Report(None, None, None, None)
    weight, pattern = found
    slowed = slow_run(run, sigma2)
    gap = realized_gap(slowed, sigma1, sigma2)
    return Theorem2Report(
        constraint_weight=weight,
        zigzag=pattern,
        zigzag_weight=pattern.weight(run),
        slow_run_gap=gap,
    )


def supported_margin(runs: Iterable["Run"], sigma1: BasicNode, sigma2: BasicNode) -> Optional[int]:
    """The largest margin ``x`` such that the run set supports ``sigma1 --x--> sigma2``.

    Ground truth for Theorem 2 on enumerable systems: the minimum observed gap
    over runs containing both nodes, or ``None`` if the statement is not
    supported for any margin (some run contains one node but not the other).
    """
    best: Optional[int] = None
    for run in runs:
        first = run.appears(sigma1)
        second = run.appears(sigma2)
        if not first and not second:
            continue
        if not (first and second):
            return None
        gap = run.time_of(sigma2) - run.time_of(sigma1)
        if best is None or gap < best:
            best = gap
    return best


# ---------------------------------------------------------------------------
# Theorem 3
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Theorem3Report:
    """Outcome of checking the knowledge-of-preconditions property in one run."""

    acted: bool
    go_in_past: Optional[bool]
    knowledge_holds: Optional[bool]

    @property
    def holds(self) -> bool:
        """If B acted, the go node must be in its past and the precedence known."""
        if not self.acted:
            return True
        return bool(self.go_in_past) and bool(self.knowledge_holds)


def check_theorem3(
    run: "Run",
    actor: str,
    action: str,
    go_sender: str,
    go_recipient: str,
    margin: int,
    late: bool,
) -> Theorem3Report:
    """Check Theorem 3 for one run of a protocol implementing Early/Late.

    ``actor``/``action`` identify B and its action ``b``; ``go_sender`` is C
    and ``go_recipient`` is A.  For ``late=True`` the implemented task is
    ``Late<a --margin--> b>`` (A acts first); otherwise ``Early<b --margin--> a>``.
    """
    record = run.find_action(actor, action)
    if record is None:
        return Theorem3Report(acted=False, go_in_past=None, knowledge_holds=None)
    sigma = record.node

    go_node = _go_node(run, go_sender)
    if go_node is None or not run.happens_before(go_node, sigma):
        return Theorem3Report(acted=True, go_in_past=False, knowledge_holds=None)

    theta_a = general(go_node, (go_sender, go_recipient))
    checker = KnowledgeChecker(sigma, run.timed_network)
    if late:
        knows = checker.knows(theta_a, sigma, margin)
    else:
        knows = checker.knows(sigma, theta_a, margin)
    return Theorem3Report(acted=True, go_in_past=True, knowledge_holds=knows)


def _go_node(run: "Run", go_sender: str) -> Optional[BasicNode]:
    """The node at which C receives the go trigger (and hence sends the go message)."""
    for record in run.external_deliveries:
        if record.process == go_sender:
            return record.receiver_node
    return None


# ---------------------------------------------------------------------------
# Theorem 4
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Theorem4Report:
    """Comparison of graph-derived knowledge with ground-truth enumeration."""

    known_gap: Optional[int]
    empirical_gap: Optional[int]

    @property
    def sound(self) -> bool:
        """Knowledge never overclaims: the known gap is at most the empirical minimum."""
        if self.known_gap is None:
            return True
        if self.empirical_gap is None:
            return True  # nothing to compare against (no run resolved both nodes)
        return self.known_gap <= self.empirical_gap

    @property
    def complete(self) -> bool:
        """Knowledge is as strong as the ground truth allows (Theorem 4 equality)."""
        if self.empirical_gap is None:
            return True
        return self.known_gap is not None and self.known_gap >= self.empirical_gap

    @property
    def exact(self) -> bool:
        return self.sound and self.complete


def check_theorem4(
    sigma: BasicNode,
    theta1: BasicNode | GeneralNode,
    theta2: BasicNode | GeneralNode,
    timed_network: TimedNetwork,
    indistinguishable_runs: Iterable["Run"],
    checker: Optional[KnowledgeChecker] = None,
) -> Theorem4Report:
    """Compare ``max_known_gap`` with the minimum gap over indistinguishable runs.

    ``indistinguishable_runs`` should exhaustively cover the runs in which
    ``sigma`` appears (e.g. from
    :func:`repro.simulation.enumerate.enumerate_runs` over all relevant
    external schedules); soundness then requires ``known <= empirical`` and
    completeness (the hard direction of Theorem 4) requires equality.

    Passing a ``checker`` built for the same ``sigma`` reuses its extended
    graph and memoized longest-path rows across calls; many-pair workloads
    should prefer :func:`check_theorem4_batch`.
    """
    if checker is None:
        checker = KnowledgeChecker(sigma, timed_network)
    elif checker.sigma != sigma:
        raise ValueError(
            f"checker observes {checker.sigma.describe()}, not {sigma.describe()}"
        )
    elif checker.timed_network != timed_network:
        raise ValueError(
            "checker was built for a different timed network; its known gaps "
            "would not be comparable to the supplied runs"
        )
    known = checker.max_known_gap(theta1, theta2)
    empirical = empirical_min_gap(indistinguishable_runs, sigma, theta1, theta2)
    return Theorem4Report(known_gap=known, empirical_gap=empirical)


def check_theorem4_batch(
    sigma: BasicNode,
    pairs: Sequence[Tuple[BasicNode | GeneralNode, BasicNode | GeneralNode]],
    timed_network: TimedNetwork,
    indistinguishable_runs: Iterable["Run"],
) -> Tuple[Theorem4Report, ...]:
    """Theorem 4 for many ``(theta1, theta2)`` pairs against one ``sigma``.

    One :class:`KnowledgeChecker` serves the whole batch: every general node
    is materialised in the extended bounds graph first and all known gaps are
    answered off the engine's memoized rows, so the graph relaxation cost is
    paid per distinct source rather than per pair.  The run collection is
    iterated once and reused for every empirical comparison.
    """
    checker = KnowledgeChecker(sigma, timed_network)
    runs = list(indistinguishable_runs)
    known_gaps = checker.max_known_gaps(pairs)
    return tuple(
        Theorem4Report(
            known_gap=known,
            empirical_gap=empirical_min_gap(runs, sigma, theta1, theta2),
        )
        for (theta1, theta2), known in zip(pairs, known_gaps)
    )
